#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace factcheck {
namespace {

Matrix RandomSpd(int n, Rng& rng) {
  // A = B B' + n * I is comfortably positive definite.
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.Uniform(-1, 1);
  }
  Matrix a = MatMul(b, b.Transpose());
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;
  b(0, 1) = 8;
  b(1, 0) = 9;
  b(1, 1) = 10;
  b(2, 0) = 11;
  b(2, 1) = 12;
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(5);
  Matrix a(3, 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = rng.Uniform(-5, 5);
  }
  Matrix att = a.Transpose().Transpose();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
  }
}

TEST(MatrixTest, SelectSubmatrix) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = 10 * i + j;
  }
  Matrix s = a.Select({0, 2}, {1});
  ASSERT_EQ(s.rows(), 2);
  ASSERT_EQ(s.cols(), 1);
  EXPECT_DOUBLE_EQ(s(0, 0), 1);
  EXPECT_DOUBLE_EQ(s(1, 0), 21);
}

TEST(MatrixTest, QuadraticFormMatchesExpansion) {
  Rng rng(9);
  Matrix a = RandomSpd(4, rng);
  Vector x = {1.0, -2.0, 0.5, 3.0};
  double direct = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) direct += x[i] * a(i, j) * x[j];
  }
  EXPECT_NEAR(QuadraticForm(x, a, x), direct, 1e-10);
}

TEST(MatrixTest, VectorHelpers) {
  Vector x = {1, 2}, y = {3, 5};
  EXPECT_DOUBLE_EQ(Dot(x, y), 13);
  EXPECT_DOUBLE_EQ(VecAdd(x, y)[1], 7);
  EXPECT_DOUBLE_EQ(VecSub(y, x)[0], 2);
  EXPECT_DOUBLE_EQ(VecScale(x, 2.5)[1], 5);
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(21);
  for (int n : {1, 2, 5, 8}) {
    Matrix a = RandomSpd(n, rng);
    auto l = Cholesky(a);
    ASSERT_TRUE(l.has_value());
    Matrix rec = MatMul(*l, l->Transpose());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3 and -1
  EXPECT_FALSE(Cholesky(a).has_value());
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Rng rng(33);
  Matrix a = RandomSpd(6, rng);
  Vector x_true(6);
  for (auto& v : x_true) v = rng.Uniform(-2, 2);
  Vector b = MatVec(a, x_true);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.has_value());
  Vector x = CholeskySolve(*l, b);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, SpdInverseProducesIdentity) {
  Rng rng(41);
  Matrix a = RandomSpd(5, rng);
  auto inv = SpdInverse(a);
  ASSERT_TRUE(inv.has_value());
  Matrix prod = MatMul(a, *inv);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(CholeskyTest, SchurComplementMatchesDirectFormula) {
  Rng rng(55);
  Matrix m = RandomSpd(6, rng);
  std::vector<int> a_idx = {0, 3};
  std::vector<int> b_idx = {1, 2, 4, 5};
  Matrix s = SchurComplement(m, a_idx, b_idx);
  // Direct: S = M_bb - M_ba M_aa^{-1} M_ab.
  Matrix m_aa_inv = *SpdInverse(m.Select(a_idx, a_idx));
  Matrix direct = MatSub(
      m.Select(b_idx, b_idx),
      MatMul(m.Select(b_idx, a_idx), MatMul(m_aa_inv, m.Select(a_idx, b_idx))));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(s(i, j), direct(i, j), 1e-8);
  }
}

TEST(CholeskyTest, SchurComplementEmptyConditioningIsRestriction) {
  Rng rng(66);
  Matrix m = RandomSpd(4, rng);
  Matrix s = SchurComplement(m, {}, {1, 3});
  EXPECT_DOUBLE_EQ(s(0, 0), m(1, 1));
  EXPECT_DOUBLE_EQ(s(1, 1), m(3, 3));
  EXPECT_DOUBLE_EQ(s(0, 1), m(1, 3));
}

TEST(CholeskyTest, SchurComplementIsPsd) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix m = RandomSpd(5, rng);
    Matrix s = SchurComplement(m, {0, 2}, {1, 3, 4});
    // Diagonal of a PSD matrix is non-negative; quadratic forms too.
    Vector x = {rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    EXPECT_GE(QuadraticForm(x, s, x), -1e-9);
  }
}

TEST(CholeskyTest, LogDetMatchesTwoByTwo) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  auto ld = LogDet(a);
  ASSERT_TRUE(ld.has_value());
  EXPECT_NEAR(*ld, std::log(11.0), 1e-10);
}

}  // namespace
}  // namespace factcheck
