#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "data/synthetic.h"
#include "montecarlo/simulator.h"
#include "util/random.h"

namespace factcheck {
namespace {

CleaningProblem TwoCoinProblem() {
  // Two binary values; current values sit at the high end.
  std::vector<UncertainObject> objects(2);
  objects[0].current_value = 10.0;
  objects[0].dist = DiscreteDistribution({0.0, 10.0}, {0.5, 0.5});
  objects[0].cost = 1.0;
  objects[1].current_value = 10.0;
  objects[1].dist = DiscreteDistribution({0.0, 10.0}, {0.5, 0.5});
  objects[1].cost = 1.0;
  return CleaningProblem(std::move(objects));
}

TEST(AdaptivePolicyTest, StopsImmediatelyOnFirstSuccess) {
  CleaningProblem p = TwoCoinProblem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  // Truth: object 0 is actually 0 -> revealing it drops f by 10 > tau.
  AdaptiveRunResult r = AdaptiveMaxPrPolicy(p, f, 5.0, 10.0, {0.0, 10.0});
  EXPECT_TRUE(r.succeeded);
  EXPECT_EQ(r.num_cleaned, 1);
  EXPECT_DOUBLE_EQ(r.cost_used, 1.0);
}

TEST(AdaptivePolicyTest, FailsWhenTruthOffersNoDrop) {
  CleaningProblem p = TwoCoinProblem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  AdaptiveRunResult r = AdaptiveMaxPrPolicy(p, f, 5.0, 10.0, {10.0, 10.0});
  EXPECT_FALSE(r.succeeded);
  EXPECT_EQ(r.num_cleaned, 2);  // kept trying until candidates ran out
}

TEST(AdaptivePolicyTest, BudgetLimitsCleaning) {
  CleaningProblem p = TwoCoinProblem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  AdaptiveRunResult r = AdaptiveMaxPrPolicy(p, f, 5.0, 1.0, {10.0, 0.0});
  // Only one cleaning affordable; whether it succeeds depends on which
  // object the policy tries first, but cost must respect the budget.
  EXPECT_LE(r.cost_used, 1.0);
  EXPECT_LE(r.num_cleaned, 1);
}

TEST(AdaptivePolicyTest, PrefersTheMoreLikelyDrop) {
  // Object 0 drops below the target with probability 0.9; object 1 with
  // probability 0.1.  Equal costs: the policy must try object 0 first.
  std::vector<UncertainObject> objects(2);
  objects[0].current_value = 10.0;
  objects[0].dist = DiscreteDistribution({0.0, 10.0}, {0.9, 0.1});
  objects[0].cost = 1.0;
  objects[1].current_value = 10.0;
  objects[1].dist = DiscreteDistribution({0.0, 10.0}, {0.1, 0.9});
  objects[1].cost = 1.0;
  CleaningProblem p(std::move(objects));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  AdaptiveRunResult r = AdaptiveMaxPrPolicy(p, f, 5.0, 2.0, {0.0, 0.0});
  ASSERT_FALSE(r.order.empty());
  EXPECT_EQ(r.order[0], 0);
}

TEST(AdaptivePolicyTest, NegativeCoefficientHandled) {
  // f = -X: f drops when X rises.
  std::vector<UncertainObject> objects(1);
  objects[0].current_value = 5.0;
  objects[0].dist = DiscreteDistribution({0.0, 20.0}, {0.5, 0.5});
  objects[0].cost = 1.0;
  CleaningProblem p(std::move(objects));
  LinearQueryFunction f({0}, {-1.0});
  AdaptiveRunResult r = AdaptiveMaxPrPolicy(p, f, 5.0, 1.0, {20.0});
  EXPECT_TRUE(r.succeeded);  // f goes from -5 to -20 < -10
}

TEST(AdaptivePolicyTest, AdaptiveAtLeastMatchesUpfrontOnAverage) {
  // Over many worlds, adapting to revealed outcomes should find surprises
  // at most as expensively as committing upfront (Section 6's motivation).
  int adaptive_wins = 0, upfront_wins = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    CleaningProblem p = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 12, .min_support = 2, .max_support = 6});
    Rng rng(seed * 7 + 1);
    CleaningProblem noisy = RedrawCurrentValues(p, rng);
    InActionScenario scenario = MakeScenario(noisy, rng);
    LinearQueryFunction f = LinearQueryFunction::FromDense(
        std::vector<double>(12, 1.0));
    double tau = 15.0;
    double budget = noisy.TotalCost();
    AdaptiveRunResult a =
        AdaptiveMaxPrPolicy(noisy, f, tau, budget, scenario.truth);
    AdaptiveRunResult u =
        UpfrontMaxPrPolicy(noisy, f, tau, budget, scenario.truth);
    if (a.succeeded && (!u.succeeded || a.cost_used <= u.cost_used)) {
      ++adaptive_wins;
    }
    if (u.succeeded && (!a.succeeded || u.cost_used < a.cost_used)) {
      ++upfront_wins;
    }
  }
  EXPECT_GE(adaptive_wins, upfront_wins);
}

TEST(UpfrontPolicyTest, RevealsInPlanOrderAndStopsEarly) {
  CleaningProblem p = TwoCoinProblem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  AdaptiveRunResult r = UpfrontMaxPrPolicy(p, f, 5.0, 10.0, {0.0, 0.0});
  EXPECT_TRUE(r.succeeded);
  EXPECT_EQ(r.num_cleaned, 1);  // the first reveal already succeeds
}

}  // namespace
}  // namespace factcheck
