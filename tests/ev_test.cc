#include <gtest/gtest.h>

#include "core/ev.h"
#include "core/problem.h"
#include "core/query_function.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

CleaningProblem BernoulliProblem() {
  // Example 3: independent Bernoullis with p = 1/2, 1/3, 1/4.
  std::vector<UncertainObject> objects(3);
  double ps[3] = {0.5, 1.0 / 3, 0.25};
  for (int i = 0; i < 3; ++i) {
    objects[i].label = "b" + std::to_string(i);
    objects[i].current_value = 0.0;
    objects[i].dist = DiscreteDistribution({0.0, 1.0}, {1 - ps[i], ps[i]});
    objects[i].cost = 1.0;
  }
  return CleaningProblem(std::move(objects));
}

LambdaQueryFunction SumBelow3Indicator() {
  return LambdaQueryFunction({0, 1, 2}, [](const std::vector<double>& x) {
    return (x[0] + x[1] + x[2] < 3.0) ? 1.0 : 0.0;
  });
}

TEST(EvTest, Example3PriorDistribution) {
  // f = 0 iff all three are 1: probability 1/24.
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  double mean = ExpectedValue(f, problem);
  EXPECT_NEAR(mean, 23.0 / 24, 1e-12);
  double p0 = 1.0 / 24;
  EXPECT_NEAR(PriorVariance(f, problem), p0 * (1 - p0), 1e-12);
}

TEST(EvTest, Example3CleaningCanIncreaseConditionalUncertainty) {
  // Cleaning X1 = 1 leaves Pr[f = 0] = 1/12, which is *more* uncertain
  // than the prior 1/24 — the paper's "uncertain effect of cleaning".
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  double prior_var = PriorVariance(f, problem);

  CleaningProblem cleaned_to_one = problem;
  cleaned_to_one.Clean(0, 1.0);
  double var_if_one = PriorVariance(f, cleaned_to_one);
  double p = 1.0 / 12;
  EXPECT_NEAR(var_if_one, p * (1 - p), 1e-12);
  EXPECT_GT(var_if_one, prior_var);

  CleaningProblem cleaned_to_zero = problem;
  cleaned_to_zero.Clean(0, 0.0);
  EXPECT_NEAR(PriorVariance(f, cleaned_to_zero), 0.0, 1e-12);
}

TEST(EvTest, Example3ExpectedVarianceStillDecreases) {
  // In expectation over the cleaning outcome, EV({X1}) <= Var (Lemma 3.4):
  // EV = 1/2 * 0 + 1/2 * (1/12)(11/12).
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  double ev = ExpectedPosteriorVariance(f, problem, {0});
  EXPECT_NEAR(ev, 0.5 * (1.0 / 12) * (11.0 / 12), 1e-12);
  EXPECT_LE(ev, PriorVariance(f, problem));
}

TEST(EvTest, EmptyCleaningEqualsPriorVariance) {
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, {}),
              PriorVariance(f, problem), 1e-12);
}

TEST(EvTest, CleaningAllReferencedObjectsKillsVariance) {
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  EXPECT_DOUBLE_EQ(ExpectedPosteriorVariance(f, problem, {0, 1, 2}), 0.0);
}

TEST(EvTest, UnreferencedObjectsDoNotMatter) {
  CleaningProblem problem = BernoulliProblem();
  // f references only objects 0 and 1.
  LambdaQueryFunction f({0, 1}, [](const std::vector<double>& x) {
    return x[0] + 2 * x[1];
  });
  EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, {2}),
              ExpectedPosteriorVariance(f, problem, {}), 1e-12);
}

TEST(EvTest, LinearFunctionEvIsModular) {
  // Lemma 3.1: affine f, independent X => EV(T) = sum_{i not in T} a_i^2
  // Var[X_i].
  CleaningProblem problem =
      data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, 9,
                          {.size = 5, .min_support = 2, .max_support = 4});
  LinearQueryFunction f({0, 1, 2, 3, 4}, {1.0, -2.0, 0.5, 1.5, -1.0});
  std::vector<double> variances = problem.Variances();
  std::vector<double> coeffs = {1.0, -2.0, 0.5, 1.5, -1.0};
  for (const std::vector<int>& t :
       {std::vector<int>{}, {0}, {1, 3}, {0, 2, 4}, {0, 1, 2, 3, 4}}) {
    double expected = 0.0;
    std::vector<bool> cleaned(5, false);
    for (int i : t) cleaned[i] = true;
    for (int i = 0; i < 5; ++i) {
      if (!cleaned[i]) expected += coeffs[i] * coeffs[i] * variances[i];
    }
    EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, t), expected, 1e-9);
  }
}

TEST(EvTest, MarginalReductionMatchesDifference) {
  CleaningProblem problem = BernoulliProblem();
  LambdaQueryFunction f = SumBelow3Indicator();
  double direct = ExpectedPosteriorVariance(f, problem, {1}) -
                  ExpectedPosteriorVariance(f, problem, {1, 2});
  EXPECT_NEAR(MarginalVarianceReduction(f, problem, {1}, 2), direct, 1e-12);
}

// Lemma 3.4 as a property: EV is monotone non-increasing over random
// instances, query functions, and cleaning chains.
class EvMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EvMonotonicityTest, EvNeverIncreasesAlongCleaningChains) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 6, .min_support = 2, .max_support = 3});
  // Random nonlinear query: indicator of a weighted sum below a threshold.
  std::vector<double> w(6);
  for (auto& v : w) v = rng.Uniform(-1, 1);
  double threshold = rng.Uniform(-50, 250);
  LambdaQueryFunction f({0, 1, 2, 3, 4, 5},
                        [w, threshold](const std::vector<double>& x) {
                          double s = 0;
                          for (int i = 0; i < 6; ++i) s += w[i] * x[i];
                          return s < threshold ? 1.0 : 0.0;
                        });
  std::vector<int> order = rng.SampleWithoutReplacement(6, 6);
  std::vector<int> cleaned;
  double prev = ExpectedPosteriorVariance(f, problem, cleaned);
  for (int i : order) {
    cleaned.push_back(i);
    double next = ExpectedPosteriorVariance(f, problem, cleaned);
    EXPECT_LE(next, prev + 1e-9) << "seed " << seed;
    prev = next;
  }
  EXPECT_NEAR(prev, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvMonotonicityTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace factcheck
