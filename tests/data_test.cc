#include <gtest/gtest.h>

#include <set>

#include "data/adoptions.h"
#include "data/cdc.h"
#include "data/dependency.h"
#include "data/synthetic.h"

namespace factcheck {
namespace {

TEST(AdoptionsTest, SizeSeedAndErrorModel) {
  CleaningProblem a = data::MakeAdoptions(7);
  CleaningProblem b = data::MakeAdoptions(7);
  EXPECT_EQ(a.size(), data::kAdoptionsYears);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.object(i).dist, b.object(i).dist);
    EXPECT_DOUBLE_EQ(a.object(i).cost, b.object(i).cost);
    EXPECT_GE(a.object(i).cost, 1.0);
    EXPECT_LE(a.object(i).cost, 100.0);
    // sigma in [1, 50] => variance within the quantization bound.
    EXPECT_LE(a.object(i).dist.Variance(), 50.0 * 50.0);
    EXPECT_NEAR(a.object(i).dist.Mean(), a.object(i).current_value, 1e-6);
  }
}

TEST(AdoptionsTest, DifferentSeedsChangeModel) {
  CleaningProblem a = data::MakeAdoptions(7);
  CleaningProblem b = data::MakeAdoptions(8);
  int differing = 0;
  for (int i = 0; i < a.size(); ++i) {
    if (!(a.object(i).dist == b.object(i).dist)) ++differing;
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(AdoptionsTest, TableMatchesProblem) {
  UncertainTable table = data::MakeAdoptionsTable(7);
  CleaningProblem from_table = table.ToCleaningProblem();
  CleaningProblem direct = data::MakeAdoptions(7);
  ASSERT_EQ(from_table.size(), direct.size());
  for (int i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_table.object(i).current_value,
                     direct.object(i).current_value);
    EXPECT_TRUE(from_table.object(i).dist == direct.object(i).dist);
  }
}

TEST(AdoptionsTest, SeriesHasEarlyNinetiesRise) {
  const std::vector<double>& s = data::AdoptionsSeries();
  ASSERT_EQ(static_cast<int>(s.size()), data::kAdoptionsYears);
  // The rise behind Giuliani's claim: 1993-1996 total > 1989-1992 total.
  double early = s[0] + s[1] + s[2] + s[3];
  double later = s[4] + s[5] + s[6] + s[7];
  EXPECT_GT(later, early);
}

TEST(CdcFirearmsTest, SizeQuantizationAndRecencyCosts) {
  CleaningProblem p = data::MakeCdcFirearms(11);
  EXPECT_EQ(p.size(), data::kCdcYears);
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.object(i).dist.support_size(), 6);  // paper's 6 points
  }
  // Costs decrease with recency: 2001 in [195,200], 2017 in [115,120].
  EXPECT_GE(p.object(0).cost, 195.0);
  EXPECT_LE(p.object(0).cost, 200.0);
  EXPECT_GE(p.object(16).cost, 115.0);
  EXPECT_LE(p.object(16).cost, 120.0);
  for (int i = 1; i < p.size(); ++i) {
    EXPECT_LT(p.object(i).cost, p.object(i - 1).cost);
  }
}

TEST(CdcFirearmsTest, StddevsMatchProblemVariances) {
  CleaningProblem p = data::MakeCdcFirearms(11);
  std::vector<double> sigmas = data::CdcFirearmsStddevs(11);
  ASSERT_EQ(static_cast<int>(sigmas.size()), p.size());
  for (int i = 0; i < p.size(); ++i) {
    // Quantization keeps most of the variance.
    double quantized_sd = std::sqrt(p.object(i).dist.Variance());
    EXPECT_GT(quantized_sd, 0.8 * sigmas[i]);
    EXPECT_LE(quantized_sd, sigmas[i] + 1e-9);
  }
}

TEST(CdcCausesTest, LayoutAndMagnitudes) {
  CleaningProblem p = data::MakeCdcCauses(13);
  EXPECT_EQ(p.size(), 68);  // 4 causes x 17 years
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.object(i).dist.support_size(), 4);  // paper's 4 points
  }
  // Index helper round-trips.
  EXPECT_EQ(data::CdcCausesIndex(0, data::kCdcFirstYear), 0);
  EXPECT_EQ(data::CdcCausesIndex(1, data::kCdcFirstYear), 17);
  EXPECT_EQ(data::CdcCausesIndex(3, data::kCdcLastYear), 67);
  // Falls dwarf drownings (sanity of relative magnitudes).
  double falls = p.object(data::CdcCausesIndex(3, 2010)).current_value;
  double drowning = p.object(data::CdcCausesIndex(2, 2010)).current_value;
  EXPECT_GT(falls, 100 * drowning);
}

TEST(CdcCausesTest, CauseNames) {
  EXPECT_EQ(data::CdcCauseName(0), "firearms");
  EXPECT_EQ(data::CdcCauseName(1), "transportation");
  EXPECT_EQ(data::CdcCauseName(2), "drowning");
  EXPECT_EQ(data::CdcCauseName(3), "falls");
}

TEST(SyntheticTest, FamiliesParseAndPrint) {
  EXPECT_EQ(data::ParseSyntheticFamily("URx"),
            data::SyntheticFamily::kUniformRandom);
  EXPECT_EQ(data::SyntheticFamilyName(data::SyntheticFamily::kLogNormal),
            "LNx");
}

TEST(SyntheticTest, UrxSupportsInRangeAndCostsInRange) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 21, {.size = 200});
  EXPECT_EQ(p.size(), 200);
  for (int i = 0; i < p.size(); ++i) {
    const auto& d = p.object(i).dist;
    EXPECT_GE(d.support_size(), 1);
    EXPECT_LE(d.support_size(), 6);
    for (int k = 0; k < d.support_size(); ++k) {
      EXPECT_GE(d.value(k), 1.0);
      EXPECT_LE(d.value(k), 100.0);
    }
    EXPECT_GE(p.object(i).cost, 1.0);
    EXPECT_LE(p.object(i).cost, 10.0);
  }
}

TEST(SyntheticTest, UrxValuesDistinctWithinSupport) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 22, {.size = 100});
  for (int i = 0; i < p.size(); ++i) {
    const auto& d = p.object(i).dist;
    std::set<double> values(d.values().begin(), d.values().end());
    EXPECT_EQ(values.size(), d.values().size());
  }
}

TEST(SyntheticTest, LnxValuesPositiveAndTypicallySmallRange) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kLogNormal, 23, {.size = 100});
  double max_value = 0;
  for (int i = 0; i < p.size(); ++i) {
    const auto& d = p.object(i).dist;
    for (int k = 0; k < d.support_size(); ++k) {
      EXPECT_GT(d.value(k), 0.0);
      max_value = std::max(max_value, d.value(k));
    }
  }
  // "resulting range is typically much smaller" than [1, 100].
  EXPECT_LT(max_value, 50.0);
}

TEST(SyntheticTest, SmxProbabilitiesAreLowHighMixture) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kStructuredMultimodal, 24, {.size = 300});
  int extreme_ratio_supports = 0;
  int multi_supports = 0;
  for (int i = 0; i < p.size(); ++i) {
    const auto& d = p.object(i).dist;
    if (d.support_size() < 2) continue;
    ++multi_supports;
    double lo = 1e300, hi = 0;
    for (int k = 0; k < d.support_size(); ++k) {
      lo = std::min(lo, d.prob(k));
      hi = std::max(hi, d.prob(k));
    }
    if (hi / lo > 3.0) ++extreme_ratio_supports;
  }
  // The low/high weight mixture should frequently produce very skewed
  // within-support probabilities (unlike URx).
  EXPECT_GT(extreme_ratio_supports, multi_supports / 4);
}

TEST(SyntheticTest, ExtremeCostsAreBinary) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 25,
      {.size = 100, .extreme_costs = true});
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_TRUE(p.object(i).cost == 1.0 || p.object(i).cost == 10.0);
  }
}

TEST(SyntheticTest, CurrentValuesAreMeans) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 26, {.size = 50});
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.object(i).current_value, p.object(i).dist.Mean());
  }
}

TEST(SyntheticTest, SameSeedReproducesIdenticalProblems) {
  // Regression for the engine test tiers: every generator draw comes from
  // the explicit per-call seed (no global RNG state), so two same-seed
  // runs must agree to the bit across all three families.
  for (data::SyntheticFamily family :
       {data::SyntheticFamily::kUniformRandom,
        data::SyntheticFamily::kLogNormal,
        data::SyntheticFamily::kStructuredMultimodal}) {
    CleaningProblem a = data::MakeSynthetic(family, 321, {.size = 30});
    CleaningProblem b = data::MakeSynthetic(family, 321, {.size = 30});
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.object(i).dist, b.object(i).dist) << i;
      EXPECT_EQ(a.object(i).cost, b.object(i).cost) << i;
      EXPECT_EQ(a.object(i).current_value, b.object(i).current_value) << i;
      EXPECT_EQ(a.object(i).label, b.object(i).label) << i;
    }
    // And a different seed must actually change the draw.
    CleaningProblem c = data::MakeSynthetic(family, 322, {.size = 30});
    bool any_diff = false;
    for (int i = 0; i < a.size() && !any_diff; ++i) {
      any_diff = !(a.object(i).dist == c.object(i).dist) ||
                 a.object(i).cost != c.object(i).cost;
    }
    EXPECT_TRUE(any_diff) << data::SyntheticFamilyName(family);
  }
}

TEST(DependencyTest, DependentCdcMatchesIndependentView) {
  data::DependentDataset d = data::MakeDependentCdcFirearms(31, 0.7);
  EXPECT_EQ(d.independent_view.size(), data::kCdcYears);
  EXPECT_EQ(d.model.dim(), data::kCdcYears);
  std::vector<double> sigmas = data::CdcFirearmsStddevs(31);
  for (int i = 0; i < d.model.dim(); ++i) {
    EXPECT_NEAR(d.model.covariance()(i, i), sigmas[i] * sigmas[i], 1e-6);
    EXPECT_DOUBLE_EQ(d.model.mean()[i],
                     d.independent_view.object(i).current_value);
  }
  // Off-diagonals follow the geometric decay.
  EXPECT_NEAR(d.model.covariance()(0, 1), 0.7 * sigmas[0] * sigmas[1], 1e-6);
  EXPECT_NEAR(d.model.covariance()(0, 3),
              0.7 * 0.7 * 0.7 * sigmas[0] * sigmas[3], 1e-6);
}

}  // namespace
}  // namespace factcheck
