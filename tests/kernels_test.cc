// Kernel-equivalence tier for the SoA planes layer (dist/planes.h,
// dist/kernels.h): every flat kernel must reproduce a FROZEN copy of the
// legacy AoS loop bit-for-bit — same atoms, same order, same accumulated
// doubles — across randomized supports (point masses, zero coefficients,
// colliding values).  On top of the kernel pins, the claim evaluator and
// the full Planner catalogue must select identically with the planes
// path on and off, so the SoA rewiring can never change a figure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "claims/ev_fast.h"
#include "claims/perturbation.h"
#include "core/planner.h"
#include "data/synthetic.h"
#include "dist/convolution.h"
#include "dist/kernels.h"
#include "dist/planes.h"
#include "exp/workload_registry.h"
#include "util/random.h"

namespace factcheck {
namespace {

// Bit pattern of a double: the equivalence pins are representation-exact
// (EXPECT_EQ on doubles would let -0.0 == 0.0 slip through).
std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// --- Frozen legacy oracles --------------------------------------------------
// Verbatim copies of the pre-planes ConvolveSum / ConvolveSum2 bodies
// (dist/convolution.cc before the kernel rewiring).  They must NEVER be
// updated to match the kernels; they define what the kernels must hit.

void LegacyCanonicalize(SumDistribution& d) {
  std::sort(d.begin(), d.end(), [](const SumAtom& x, const SumAtom& y) {
    return x.value < y.value;
  });
  size_t out = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (out > 0 && d[out - 1].value == d[i].value) {
      d[out - 1].prob += d[i].prob;
    } else {
      d[out++] = d[i];
    }
  }
  d.resize(out);
}

void LegacyCanonicalize2(SumDistribution2& d) {
  std::sort(d.begin(), d.end(), [](const SumAtom2& x, const SumAtom2& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  size_t out = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (out > 0 && d[out - 1].a == d[i].a && d[out - 1].b == d[i].b) {
      d[out - 1].prob += d[i].prob;
    } else {
      d[out++] = d[i];
    }
  }
  d.resize(out);
}

SumDistribution LegacyConvolveSum(const std::vector<WeightedTerm>& terms) {
  SumDistribution acc = {{0.0, 1.0}};
  for (const WeightedTerm& term : terms) {
    const DiscreteDistribution& x = *term.dist;
    if (x.is_point_mass()) {
      double shift = term.coeff * x.value(0);
      for (SumAtom& a : acc) a.value += shift;
      continue;
    }
    if (term.coeff == 0.0) continue;
    SumDistribution next;
    next.reserve(acc.size() * x.support_size());
    for (const SumAtom& a : acc) {
      for (int k = 0; k < x.support_size(); ++k) {
        next.push_back(
            {a.value + term.coeff * x.value(k), a.prob * x.prob(k)});
      }
    }
    LegacyCanonicalize(next);
    acc = std::move(next);
  }
  LegacyCanonicalize(acc);
  return acc;
}

SumDistribution2 LegacyConvolveSum2(const std::vector<WeightedTerm2>& terms) {
  SumDistribution2 acc = {{0.0, 0.0, 1.0}};
  for (const WeightedTerm2& term : terms) {
    const DiscreteDistribution& x = *term.dist;
    if (x.is_point_mass()) {
      double da = term.coeff_a * x.value(0);
      double db = term.coeff_b * x.value(0);
      for (SumAtom2& a : acc) {
        a.a += da;
        a.b += db;
      }
      continue;
    }
    if (term.coeff_a == 0.0 && term.coeff_b == 0.0) continue;
    SumDistribution2 next;
    next.reserve(acc.size() * x.support_size());
    for (const SumAtom2& a : acc) {
      for (int k = 0; k < x.support_size(); ++k) {
        next.push_back({a.a + term.coeff_a * x.value(k),
                        a.b + term.coeff_b * x.value(k), a.prob * x.prob(k)});
      }
    }
    LegacyCanonicalize2(next);
    acc = std::move(next);
  }
  LegacyCanonicalize2(acc);
  return acc;
}

// --- Randomized instance generators ----------------------------------------

// Integer-spaced supports so cross-term sums collide and the merge branch
// of the canonicalization actually runs; support 1 yields the point-mass
// shift path.
DiscreteDistribution RandomDist(Rng& rng) {
  int support = rng.UniformInt(1, 4);
  std::vector<int> pool = {-3, -2, -1, 0, 1, 2, 3, 4};
  for (int i = 0; i < support; ++i) {
    int j = rng.UniformInt(i, static_cast<int>(pool.size()) - 1);
    std::swap(pool[i], pool[j]);
  }
  std::vector<double> values, probs;
  for (int i = 0; i < support; ++i) {
    values.push_back(pool[i]);
    probs.push_back(rng.Uniform(0.1, 1.0));
  }
  return DiscreteDistribution(values, probs);
}

// Zero, duplicate, negative and fractional coefficients all hit distinct
// branches of the legacy loop.
double RandomCoeff(Rng& rng) {
  switch (rng.UniformInt(0, 5)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return -1.0;
    case 3: return 2.0;
    case 4: return 0.5;
    default: return rng.Uniform(-2.0, 2.0);
  }
}

// --- 1-D convolution kernel -------------------------------------------------

TEST(KernelConvolveTest, FlatMatchesLegacyOnRandomizedTerms) {
  Rng rng(71);
  ConvolutionWorkspace ws;
  KernelCounters counters;
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    int num_terms = rng.UniformInt(0, 5);
    std::vector<DiscreteDistribution> dists;
    dists.reserve(num_terms);  // FlatTerm borrows; no reallocation allowed
    std::vector<WeightedTerm> legacy;
    std::vector<FlatTerm> flat;
    for (int t = 0; t < num_terms; ++t) {
      dists.push_back(RandomDist(rng));
      const DiscreteDistribution& d = dists.back();
      double coeff = RandomCoeff(rng);
      legacy.push_back({&d, coeff});
      flat.push_back(
          {d.values().data(), d.probs().data(), d.support_size(), coeff});
    }
    SumDistribution expect = LegacyConvolveSum(legacy);
    int n = ConvolveSumFlat(flat.data(), num_terms, ws, &counters);
    ASSERT_EQ(n, static_cast<int>(expect.size()));
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(Bits(ws.values()[k]), Bits(expect[k].value)) << "atom " << k;
      EXPECT_EQ(Bits(ws.probs()[k]), Bits(expect[k].prob)) << "atom " << k;
    }
  }
  EXPECT_GT(counters.calls, 0);
  EXPECT_GT(counters.atoms, 0);
}

TEST(KernelConvolveTest, ShimStaysOnTheLegacyContract) {
  // The AoS ConvolveSum API now routes through the flat kernel; the same
  // randomized instances must keep matching the frozen oracle through it.
  Rng rng(72);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    int num_terms = rng.UniformInt(0, 4);
    std::vector<DiscreteDistribution> dists;
    dists.reserve(num_terms);
    std::vector<WeightedTerm> terms;
    for (int t = 0; t < num_terms; ++t) {
      dists.push_back(RandomDist(rng));
      terms.push_back({&dists.back(), RandomCoeff(rng)});
    }
    SumDistribution expect = LegacyConvolveSum(terms);
    SumDistribution got = ConvolveSum(terms);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(Bits(got[k].value), Bits(expect[k].value));
      EXPECT_EQ(Bits(got[k].prob), Bits(expect[k].prob));
    }
  }
}

// --- 2-D (joint) convolution kernel ----------------------------------------

TEST(KernelConvolveTest, Flat2MatchesLegacyOnRandomizedTerms) {
  Rng rng(73);
  ConvolutionWorkspace2 ws;
  KernelCounters counters;
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    int num_terms = rng.UniformInt(0, 4);
    std::vector<DiscreteDistribution> dists;
    dists.reserve(num_terms);
    std::vector<WeightedTerm2> legacy;
    std::vector<FlatTerm2> flat;
    for (int t = 0; t < num_terms; ++t) {
      dists.push_back(RandomDist(rng));
      const DiscreteDistribution& d = dists.back();
      // Exclusive-to-a, exclusive-to-b, shared and dead terms: the four
      // shapes the pair evaluator emits.
      double ca = RandomCoeff(rng);
      double cb = RandomCoeff(rng);
      legacy.push_back({&d, ca, cb});
      flat.push_back(
          {d.values().data(), d.probs().data(), d.support_size(), ca, cb});
    }
    SumDistribution2 expect = LegacyConvolveSum2(legacy);
    int n = ConvolveSum2Flat(flat.data(), num_terms, ws, &counters);
    ASSERT_EQ(n, static_cast<int>(expect.size()));
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(Bits(ws.a()[k]), Bits(expect[k].a)) << "atom " << k;
      EXPECT_EQ(Bits(ws.b()[k]), Bits(expect[k].b)) << "atom " << k;
      EXPECT_EQ(Bits(ws.probs()[k]), Bits(expect[k].prob)) << "atom " << k;
    }
  }
  EXPECT_GT(counters.calls, 0);
}

// --- Planes store -----------------------------------------------------------

TEST(DistPlanesTest, RowsAreBitExactCopiesOfSourceDistributions) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 33, .min_support = 1, .max_support = 5});
  const DistPlanes& planes = problem.planes();
  ASSERT_EQ(planes.num_objects(), 33);
  std::int64_t atoms = 0;
  for (int i = 0; i < planes.num_objects(); ++i) {
    const DiscreteDistribution& d = problem.object(i).dist;
    ASSERT_EQ(planes.support_size(i), d.support_size());
    EXPECT_EQ(planes.is_point_mass(i), d.is_point_mass());
    EXPECT_EQ(std::memcmp(planes.values(i), d.values().data(),
                          sizeof(double) * d.support_size()),
              0);
    EXPECT_EQ(std::memcmp(planes.probs(i), d.probs().data(),
                          sizeof(double) * d.support_size()),
              0);
    // Rows start on 8-double boundaries relative to the arena base, so
    // kernels get aligned contiguous loads.
    EXPECT_EQ((planes.values(i) - planes.values(0)) % 8, 0);
    atoms += d.support_size();
  }
  EXPECT_EQ(planes.total_atoms(), atoms);
  EXPECT_GE(planes.arena_bytes(),
            static_cast<std::int64_t>(2 * sizeof(double) * atoms));
}

TEST(DistPlanesTest, ProblemCacheRebuildsAfterClean) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 9,
      {.size = 8, .min_support = 2});
  ASSERT_GT(problem.planes().support_size(3), 1);
  problem.Clean(3, problem.object(3).dist.Mean());
  // The planes cache is invalidated by mutation: the rebuilt store sees
  // the point mass the cleaning installed.
  EXPECT_EQ(problem.planes().support_size(3), 1);
}

// --- Flat reductions vs naive loops ----------------------------------------

TEST(KernelReductionTest, ReductionsMatchNaiveLoopsBitwise) {
  Rng rng(74);
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    DiscreteDistribution d = RandomDist(rng);
    const double* v = d.values().data();
    const double* p = d.probs().data();
    int n = d.support_size();

    double mean = 0.0;
    for (int k = 0; k < n; ++k) mean += p[k] * v[k];
    EXPECT_EQ(Bits(WeightedSum(v, p, n)), Bits(mean));
    EXPECT_EQ(Bits(d.Mean()), Bits(mean));

    double m2 = 0.0;
    for (int k = 0; k < n; ++k) m2 += p[k] * v[k] * v[k];
    EXPECT_EQ(Bits(WeightedSquareSum(v, p, n)), Bits(m2));
    EXPECT_EQ(Bits(d.SecondMoment()), Bits(m2));

    double var = 0.0;
    for (int k = 0; k < n; ++k) {
      double dv = v[k] - mean;
      var += p[k] * dv * dv;
    }
    EXPECT_EQ(Bits(CenteredSquareSum(v, p, n, mean)), Bits(var));
    EXPECT_EQ(Bits(d.Variance()), Bits(var));

    double ent = 0.0;
    for (int k = 0; k < n; ++k) {
      if (p[k] > 0.0) ent -= p[k] * std::log(p[k]);
    }
    EXPECT_EQ(Bits(EntropySum(p, n)), Bits(ent));
    EXPECT_EQ(Bits(d.Entropy()), Bits(ent));

    for (double x : {-5.0, v[0], 0.25, v[n - 1], 10.0}) {
      double below = 0.0;
      for (int k = 0; k < n && v[k] < x; ++k) below += p[k];
      EXPECT_EQ(Bits(MassBelow(v, p, n, x)), Bits(below));
      EXPECT_EQ(Bits(d.CdfBelow(x)), Bits(below));
      double at_or_below = 0.0;
      for (int k = 0; k < n && v[k] <= x; ++k) at_or_below += p[k];
      EXPECT_EQ(Bits(MassAtOrBelow(v, p, n, x)), Bits(at_or_below));
      EXPECT_EQ(Bits(d.CdfAtOrBelow(x)), Bits(at_or_below));
    }
  }
}

// --- Claim evaluator: planes on vs off -------------------------------------

TEST(KernelEvaluatorTest, PlanesPathBitIdenticalToAoSPath) {
  // Overlapping windows: shared objects between claims, so the 2-D pair
  // kernels (ECovTerm) run alongside the 1-D EVarTerm path.
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7, {.size = 24});
  PerturbationSet context = SlidingWindowSumPerturbations(24, 4, 0, 1.5);
  const std::vector<std::vector<int>> cleaned_sets = {
      {}, {0}, {23}, {1, 5, 9, 13}, {0, 1, 2, 3, 4, 5, 6, 7},
      {0, 3, 6, 9, 12, 15, 18, 21}};
  for (QualityMeasure measure : {QualityMeasure::kBias,
                                 QualityMeasure::kDuplicity,
                                 QualityMeasure::kFragility}) {
    for (StrengthDirection direction :
         {StrengthDirection::kHigherIsStronger,
          StrengthDirection::kLowerIsStronger}) {
      SCOPED_TRACE("measure=" + std::to_string(static_cast<int>(measure)) +
                   " dir=" + std::to_string(static_cast<int>(direction)));
      ClaimEvEvaluator aos(&problem, &context, measure, 120.0, direction,
                           /*use_planes=*/false);
      ClaimEvEvaluator soa(&problem, &context, measure, 120.0, direction,
                           /*use_planes=*/true);
      ASSERT_FALSE(aos.planes_enabled());
      ASSERT_TRUE(soa.planes_enabled());
      // Term values are bit-identical across the paths (pinned through
      // Moments and GreedyMinVar below); EV itself aggregates base+delta
      // on the planes path, so it agrees to rounding, not bit pattern.
      for (const std::vector<int>& cleaned : cleaned_sets) {
        double expect = aos.EV(cleaned);
        EXPECT_NEAR(soa.EV(cleaned), expect,
                    1e-9 * (1.0 + std::abs(expect)));
      }
      QualityMoments aos_m = aos.Moments();
      QualityMoments soa_m = soa.Moments();
      EXPECT_EQ(Bits(aos_m.mean), Bits(soa_m.mean));
      EXPECT_EQ(Bits(aos_m.variance), Bits(soa_m.variance));
      Selection aos_sel = aos.GreedyMinVar(0.4 * problem.TotalCost());
      Selection soa_sel = soa.GreedyMinVar(0.4 * problem.TotalCost());
      EXPECT_EQ(aos_sel.cleaned, soa_sel.cleaned);
      EXPECT_EQ(aos_sel.order, soa_sel.order);
      EXPECT_EQ(Bits(aos_sel.cost), Bits(soa_sel.cost));
    }
  }
}

TEST(KernelEvaluatorTest, CountersTrackPlanesWorkOnly) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7, {.size = 24});
  PerturbationSet context = SlidingWindowSumPerturbations(24, 4, 0, 1.5);
  ClaimEvEvaluator aos(&problem, &context, QualityMeasure::kDuplicity, 120.0,
                       StrengthDirection::kHigherIsStronger,
                       /*use_planes=*/false);
  ClaimEvEvaluator soa(&problem, &context, QualityMeasure::kDuplicity, 120.0,
                       StrengthDirection::kHigherIsStronger,
                       /*use_planes=*/true);
  aos.EV({1, 5, 9, 13});
  soa.EV({1, 5, 9, 13});
  EXPECT_EQ(aos.kernel_counters().calls, 0);
  EXPECT_EQ(aos.kernel_counters().atoms, 0);
  EXPECT_GT(soa.kernel_counters().calls, 0);
  EXPECT_GT(soa.kernel_counters().atoms, 0);
}

// --- Full Planner catalogue: planes toggle cannot change a selection --------

// Restores the process-wide default on every exit path so later suites in
// this binary see the shipped configuration.
struct PlanesGuard {
  ~PlanesGuard() { ClaimEvEvaluator::SetPlanesEnabledForTest(true); }
};

TEST(KernelWorkloadSweep, AllRegisteredWorkloadsSelectIdenticallyPlanesOnOff) {
  using exp::Workload;
  using exp::WorkloadOptions;
  using exp::WorkloadRegistry;
  PlanesGuard guard;
  int covered = 0;
  for (const auto* entry : WorkloadRegistry::Global().Sorted()) {
    SCOPED_TRACE(entry->name);
    WorkloadOptions options;
    options.size = 48;  // keep the synthetic families test-sized

    ClaimEvEvaluator::SetPlanesEnabledForTest(false);
    Workload aos_w = entry->build(options);
    aos_w.name = entry->name;
    if (aos_w.objective != ObjectiveKind::kMinVar ||
        aos_w.metric == nullptr) {
      continue;
    }
    ++covered;
    PlanRequest aos_request = aos_w.MakeRequest(0.3 * aos_w.TotalCost());
    aos_request.with_trajectory = true;
    PlanResult aos = Planner(aos_w.registry()).Plan(aos_request,
                                                    "greedy_minvar");

    ClaimEvEvaluator::SetPlanesEnabledForTest(true);
    Workload soa_w = entry->build(options);
    soa_w.name = entry->name;
    PlanRequest soa_request = soa_w.MakeRequest(0.3 * soa_w.TotalCost());
    soa_request.with_trajectory = true;
    PlanResult soa = Planner(soa_w.registry()).Plan(soa_request,
                                                    "greedy_minvar");

    EXPECT_EQ(aos.selection.cleaned, soa.selection.cleaned);
    EXPECT_EQ(aos.selection.order, soa.selection.order);
    EXPECT_EQ(Bits(aos.selection.cost), Bits(soa.selection.cost));
    // The trajectory goes through the workload metric, where the planes
    // path aggregates EV as base+delta: equal to rounding, not bits.
    ASSERT_EQ(aos.trajectory.size(), soa.trajectory.size());
    for (size_t k = 0; k < aos.trajectory.size(); ++k) {
      EXPECT_NEAR(soa.trajectory[k], aos.trajectory[k],
                  1e-9 * (1.0 + std::abs(aos.trajectory[k])))
          << "round " << k;
    }
  }
  // The sweep must actually cover the catalogue (claims, fairness,
  // dependency, engine-gate and kernel-gate workloads are all kMinVar).
  EXPECT_GE(covered, 10);
}

// --- Guard rails ------------------------------------------------------------

TEST(KernelConvolveDeathTest, ExpansionBeyondAtomCapAborts) {
  // Two dense terms whose product support would pass 2^24: the overflow
  // guard must fire before the expansion allocates.
  int n = 5000;
  std::vector<double> values(n), probs(n);
  for (int k = 0; k < n; ++k) {
    values[k] = k;
    probs[k] = 1.0;
  }
  DiscreteDistribution wide(values, probs);
  std::vector<FlatTerm> terms(
      2, FlatTerm{wide.values().data(), wide.probs().data(),
                  wide.support_size(), 1.0});
  ConvolutionWorkspace ws;
  EXPECT_DEATH(ConvolveSumFlat(terms.data(), 2, ws, nullptr),
               "kMaxConvolutionAtoms");
}

#ifndef NDEBUG
TEST(KernelBoundsDeathTest, AtomAccessorsBoundsCheckedInDebugBuilds) {
  DiscreteDistribution coin({0.0, 1.0}, {0.5, 0.5});
  EXPECT_DEATH(coin.value(2), "CHECK failed");
  EXPECT_DEATH(coin.prob(-1), "CHECK failed");
}
#endif

}  // namespace
}  // namespace factcheck
