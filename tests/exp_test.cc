// Suite for the experiment subsystem (src/exp): the workload registry
// catalogue (golden list-workloads text), the ExperimentRunner contract
// (aggregation, objective scoring, error paths), the factcheck.bench.v1
// JSON schema consumed by CI's bench-smoke job, and cross-workload seed
// determinism — every registered workload built twice with the same seed
// yields bit-identical problems and Planner results, including with a
// thread pool and the lazy driver.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "data/problem_io.h"
#include "exp/experiment.h"
#include "exp/workload_registry.h"
#include "exp/workloads.h"
#include "util/json.h"

namespace factcheck {
namespace {

using exp::ExperimentCell;
using exp::ExperimentRunner;
using exp::ExperimentSpec;
using exp::Workload;
using exp::WorkloadOptions;
using exp::WorkloadRegistry;

TEST(WorkloadRegistry, GoldenListWorkloads) {
  EXPECT_EQ(
      cli::ListWorkloadsText(),
      "workload                   summary\n"
      "adoptions_competing        Fig 12: MinVar vs MaxPr objectives on "
      "Adoptions, tau=40\n"
      "adoptions_fairness         Fig 1a/1b: modular claim fairness on "
      "Adoptions\n"
      "adoptions_ratio            Extension: percentage-change claim on "
      "Adoptions\n"
      "cdc_causes_fairness        Fig 1d: modular claim fairness on "
      "CDC-causes\n"
      "cdc_causes_uniqueness      Fig 2b / Fig 8: claim uniqueness on "
      "CDC-causes\n"
      "cdc_dependency             Fig 11: injected covariance on "
      "CDC-firearms (--gamma = corr)\n"
      "cdc_firearms_fairness      Fig 1c: modular claim fairness on "
      "CDC-firearms\n"
      "cdc_firearms_robustness    Fig 7a: claim robustness (fragility) on "
      "CDC-firearms\n"
      "cdc_firearms_uniqueness    Fig 2a: claim uniqueness (duplicity) on "
      "CDC-firearms\n"
      "degraded_scaling           Robustness gate: faults, deadlines, "
      "shedding on a live server\n"
      "dist_kernels               Perf gate: SoA kernels vs AoS on "
      "overlapping claims\n"
      "engine_scaling             Perf gate: incremental vs batch engine "
      "greedy (--size)\n"
      "lnx_uniqueness             Fig 4: window-sum uniqueness on LNx "
      "(--gamma sweeps)\n"
      "replan_scaling             Delta gate: warm replan latency vs "
      "streamed delta size\n"
      "service_scaling            Serving gate: concurrent clients on one "
      "warm engine\n"
      "smx_uniqueness             Fig 5: window-sum uniqueness on SMx "
      "(--gamma sweeps)\n"
      "urx_action                 Fig 9: in-action uniqueness on URx, "
      "Gamma = 100\n"
      "urx_ratio                  Extension: percentage-change claim on "
      "URx (--gamma)\n"
      "urx_robustness             Fig 7b: claim robustness on URx n=100, "
      "Gamma' = 100\n"
      "urx_scaling                Fig 10: incremental greedy efficiency "
      "on URx (--size)\n"
      "urx_uniqueness             Fig 3: window-sum uniqueness on URx "
      "(--gamma sweeps)\n"
      "urx_window_exact           Engine bench: exact-enumeration MinVar "
      "on URx windows\n");
}

TEST(WorkloadRegistry, EveryEntryDeclaresDefaults) {
  for (const auto* entry : WorkloadRegistry::Global().Sorted()) {
    Workload w = WorkloadRegistry::Global().Build(entry->name);
    EXPECT_EQ(w.name, entry->name);
    EXPECT_NE(w.problem, nullptr) << entry->name;
    EXPECT_NE(w.query, nullptr) << entry->name;
    EXPECT_FALSE(w.default_algorithms.empty()) << entry->name;
    EXPECT_FALSE(w.default_budget_fractions.empty()) << entry->name;
    // Every default algorithm resolves in the workload's registry.
    Planner planner(w.registry());
    for (const std::string& algo : w.default_algorithms) {
      EXPECT_NE(planner.registry().Find(algo), nullptr)
          << entry->name << "/" << algo;
    }
  }
}

TEST(ExperimentRunner, UnknownWorkloadAndAlgorithmErrors) {
  ExperimentRunner runner;
  std::string error;
  ExperimentSpec spec;
  spec.workload = "nope";
  EXPECT_FALSE(runner.TryRun(spec, &error).has_value());
  EXPECT_NE(error.find("unknown workload"), std::string::npos) << error;

  spec.workload = "urx_uniqueness";
  spec.algorithms = {"nope"};
  spec.budget_fractions = {0.1};
  EXPECT_FALSE(runner.TryRun(spec, &error).has_value());
  EXPECT_NE(error.find("unknown algorithm"), std::string::npos) << error;
}

TEST(ExperimentRunner, SweepShapeAndAggregation) {
  ExperimentRunner runner;
  ExperimentSpec spec;
  spec.workload = "urx_uniqueness";
  spec.algorithms = {"greedy_naive", "claims_greedy_minvar"};
  spec.budget_fractions = {0.1, 0.3};
  spec.seeds = {7, 8};
  spec.repetitions = 3;
  spec.warmup = 1;
  std::vector<ExperimentCell> cells = runner.Run(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);  // seeds x budgets x algorithms
  // Order: seed-major, then budget, then algorithm.
  EXPECT_EQ(cells[0].seed, 7u);
  EXPECT_EQ(cells[0].algo, "greedy_naive");
  EXPECT_EQ(cells[1].algo, "claims_greedy_minvar");
  EXPECT_DOUBLE_EQ(cells[0].budget_fraction, 0.1);
  EXPECT_DOUBLE_EQ(cells[2].budget_fraction, 0.3);
  EXPECT_EQ(cells[4].seed, 8u);
  for (const ExperimentCell& cell : cells) {
    EXPECT_EQ(cell.repetitions, 3);
    EXPECT_LE(cell.wall_ms_min, cell.wall_ms);
    EXPECT_LE(cell.wall_ms_min, cell.wall_ms_mean);
    EXPECT_TRUE(cell.has_objective);
    EXPECT_TRUE(std::isfinite(cell.objective));
    EXPECT_FALSE(cell.result.selection.cleaned.empty());
  }
}

TEST(ExperimentRunner, AbsoluteBudgetsHaveNoFraction) {
  ExperimentRunner runner;
  ExperimentSpec spec;
  spec.workload = "urx_uniqueness";
  spec.algorithms = {"greedy_naive"};
  spec.budgets = {5.0};
  std::vector<ExperimentCell> cells = runner.Run(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(std::isnan(cells[0].budget_fraction));
  EXPECT_DOUBLE_EQ(cells[0].budget, 5.0);
}

TEST(ExperimentRunner, ObjectiveMatchesWorkloadMetric) {
  Workload w = WorkloadRegistry::Global().Build("urx_uniqueness");
  ExperimentRunner runner;
  ExperimentCell cell =
      runner.RunCell(w, "claims_greedy_minvar", 0.2 * w.TotalCost());
  ASSERT_TRUE(cell.has_objective);
  EXPECT_EQ(cell.objective, w.metric(cell.result.selection.cleaned));
}

TEST(ExperimentRunner, ExactWorkloadScoresThroughTrajectory) {
  Workload w = WorkloadRegistry::Global().Build("urx_window_exact");
  ASSERT_EQ(w.metric, nullptr);
  ExperimentRunner runner;
  ExperimentCell cell =
      runner.RunCell(w, "greedy_minvar", 0.35 * w.TotalCost());
  EXPECT_TRUE(cell.has_objective);
  EXPECT_TRUE(cell.result.has_objective_value);
  EXPECT_EQ(cell.objective, cell.result.objective_value);

  ExperimentCell quiet =
      runner.RunCell(w, "greedy_minvar", 0.35 * w.TotalCost(),
                     EngineOptions{}, /*with_objective=*/false);
  EXPECT_FALSE(quiet.has_objective);
  EXPECT_TRUE(quiet.result.trajectory.empty());
}

// The factcheck.bench.v1 schema the CI bench-smoke job asserts: a schema
// tag, a spec block, and one flat object per cell with the documented
// keys.
TEST(ExperimentJson, SchemaKeys) {
  ExperimentRunner runner;
  ExperimentSpec spec;
  spec.workload = "urx_uniqueness";
  spec.algorithms = {"greedy_naive"};
  spec.budget_fractions = {0.1};
  std::vector<ExperimentCell> cells = runner.Run(spec);
  std::string json = exp::ExperimentJson(spec, cells);
  EXPECT_EQ(json.find("{\"schema\":\"factcheck.bench.v1\",\"spec\":{"), 0u)
      << json;
  // Spec block: the run's full parameterization (self-describing
  // artifacts); gamma defaults to null (NaN).
  for (const char* key :
       {"\"size\":", "\"gamma\":", "\"algorithms\":",
        "\"budget_fractions\":", "\"budgets\":", "\"seeds\":",
        "\"warmup\":", "\"mc_samples\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"gamma\":null"), std::string::npos) << json;
  for (const char* key :
       {"\"workload\":", "\"algo\":", "\"budget\":", "\"budget_fraction\":",
        "\"seed\":", "\"threads\":", "\"lazy\":", "\"repetitions\":",
        "\"wall_ms\":", "\"wall_ms_min\":", "\"wall_ms_mean\":",
        "\"evaluations\":", "\"cache_hits\":", "\"cache_evictions\":",
        "\"probes\":", "\"commits\":", "\"kernel_calls\":",
        "\"kernel_atoms\":", "\"plane_rows_rebuilt\":",
        "\"requests\":", "\"sheds\":", "\"deadline_exceeded\":",
        "\"retries\":", "\"faults_injected\":",
        "\"picked\":", "\"cost\":", "\"objective\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"workload\":\"urx_uniqueness\""), std::string::npos);
  EXPECT_NE(json.find("\"algo\":\"greedy_naive\""), std::string::npos);
}

// --- Cross-workload seed determinism --------------------------------------

void ExpectSameCell(const ExperimentCell& a, const ExperimentCell& b,
                    bool compare_objective = true) {
  EXPECT_EQ(a.result.selection.cleaned, b.result.selection.cleaned);
  EXPECT_EQ(a.result.selection.order, b.result.selection.order);
  EXPECT_EQ(a.result.selection.cost, b.result.selection.cost);  // bit-equal
  if (compare_objective) {
    EXPECT_EQ(a.has_objective, b.has_objective);
    if (a.has_objective && b.has_objective) {
      EXPECT_EQ(a.objective, b.objective);  // bit-equal
    }
  }
}

// Every registered workload, built twice with the same seed, must yield
// bit-identical problems and bit-identical Planner selections/objectives
// for all of its default algorithms — under a thread pool and the lazy
// driver too.
TEST(WorkloadDeterminism, RebuildAndRerunBitIdentical) {
  ExperimentRunner runner;
  for (const auto* entry : WorkloadRegistry::Global().Sorted()) {
    SCOPED_TRACE(entry->name);
    WorkloadOptions options;
    options.seed = 2019;
    Workload w1 = entry->build(options);
    Workload w2 = entry->build(options);
    EXPECT_EQ(data::ProblemToCsv(*w1.problem), data::ProblemToCsv(*w2.problem));

    const std::vector<double>& fracs = w1.default_budget_fractions;
    ASSERT_FALSE(fracs.empty());
    double budget = w1.TotalCost() * fracs[fracs.size() / 2];

    for (const std::string& algo : w1.default_algorithms) {
      SCOPED_TRACE(algo);
      for (bool lazy : {false, true}) {
        std::vector<ExperimentCell> per_pool;
        for (int threads : {1, 4}) {
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " lazy=" + std::to_string(lazy));
          EngineOptions engine;
          engine.threads = threads;
          engine.lazy = lazy;
          ExperimentCell c1 = runner.RunCell(w1, algo, budget, engine);
          ExperimentCell c2 = runner.RunCell(w2, algo, budget, engine);
          ExpectSameCell(c1, c2);
          per_pool.push_back(std::move(c1));
        }
        // The engine guarantees bit-stable results for any pool size, so
        // the 4-thread run agrees with the single-threaded one at the
        // same lazy setting.  (Plain vs CELF equality is only guaranteed
        // on submodular objectives and is pinned where it holds —
        // bench_engine's match column and the engine equivalence suite.)
        ExpectSameCell(per_pool[0], per_pool[1]);
      }
    }
  }
}

}  // namespace
}  // namespace factcheck
