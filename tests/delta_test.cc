// The streaming-delta subsystem (core/delta.h): ProblemDelta validation
// and Apply semantics, the mutation epoch + change journal
// (CleaningProblem::epoch / ChangesSince), the O(changed rows) partial
// planes rebuild, and EvalEngine's epoch downdating (BindProblem) — the
// cache-consistency contracts the replan_scaling bench gate quantifies.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta.h"
#include "core/engine.h"
#include "core/problem.h"
#include "dist/discrete.h"
#include "dist/planes.h"

namespace factcheck {
namespace {

CleaningProblem MakeProblem(int n = 6) {
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.25 * (i % 3);
    double mid = 10.0 + i;
    object.dist = DiscreteDistribution({mid - 1.0, mid, mid + 2.0 + 0.5 * i},
                                       {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

UncertainObject MakeObject(const std::string& label) {
  UncertainObject object;
  object.label = label;
  object.current_value = 3.0;
  object.cost = 2.0;
  object.dist = DiscreteDistribution({2.0, 4.0}, {0.5, 0.5});
  return object;
}

// --- ValidateDelta ----------------------------------------------------------

TEST(ValidateDelta, AcceptsEveryKindInRange) {
  CleaningProblem problem = MakeProblem(4);
  std::string error;
  EXPECT_TRUE(ValidateDelta(
      problem,
      ProblemDelta::ReplaceDistribution(1, DiscreteDistribution({1}, {1})),
      &error))
      << error;
  EXPECT_TRUE(ValidateDelta(problem, ProblemDelta::AddObject(MakeObject("x")),
                            &error))
      << error;
  EXPECT_TRUE(ValidateDelta(problem, ProblemDelta::RemoveObject(3), &error))
      << error;
  EXPECT_TRUE(ValidateDelta(problem, ProblemDelta::SetCost(0, 5.0), &error));
  EXPECT_TRUE(
      ValidateDelta(problem, ProblemDelta::SetCurrentValue(2, -1.0), &error));
  EXPECT_TRUE(ValidateDelta(problem, ProblemDelta::Clean(2, 11.5), &error));
}

TEST(ValidateDelta, RejectsOutOfRangeIndices) {
  CleaningProblem problem = MakeProblem(4);
  std::string error;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::SetCost(4, 1.0), &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::Clean(-1, 0.0), &error));
  EXPECT_FALSE(ValidateDelta(
      problem,
      ProblemDelta::ReplaceDistribution(99, DiscreteDistribution({1}, {1})),
      &error));
}

TEST(ValidateDelta, RejectsInteriorRemoval) {
  CleaningProblem problem = MakeProblem(4);
  std::string error;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::RemoveObject(1), &error));
  EXPECT_NE(error.find("only the last object"), std::string::npos) << error;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::RemoveObject(4), &error));
}

TEST(ValidateDelta, RejectsNonPositiveCosts) {
  CleaningProblem problem = MakeProblem(4);
  std::string error;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::SetCost(0, 0.0), &error));
  EXPECT_NE(error.find("must be > 0"), std::string::npos) << error;
  UncertainObject bad = MakeObject("bad");
  bad.cost = -1.0;
  EXPECT_FALSE(ValidateDelta(problem, ProblemDelta::AddObject(bad), &error));
}

// --- Apply ------------------------------------------------------------------

TEST(ProblemApply, EachKindMutatesWhatItNames) {
  CleaningProblem problem = MakeProblem(4);

  problem.Apply(ProblemDelta::SetCost(1, 7.5));
  EXPECT_EQ(problem.object(1).cost, 7.5);

  problem.Apply(ProblemDelta::SetCurrentValue(2, 42.0));
  EXPECT_EQ(problem.object(2).current_value, 42.0);

  DiscreteDistribution swapped({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  problem.Apply(ProblemDelta::ReplaceDistribution(0, swapped));
  EXPECT_EQ(problem.object(0).dist.support_size(), 3);
  EXPECT_EQ(problem.object(0).dist.value(2), 3.0);

  problem.Apply(ProblemDelta::Clean(3, 13.25));
  EXPECT_EQ(problem.object(3).current_value, 13.25);
  EXPECT_EQ(problem.object(3).dist.support_size(), 1);
  EXPECT_EQ(problem.object(3).dist.value(0), 13.25);

  problem.Apply(ProblemDelta::AddObject(MakeObject("tail")));
  ASSERT_EQ(problem.size(), 5);
  EXPECT_EQ(problem.object(4).label, "tail");

  problem.Apply(ProblemDelta::RemoveObject(4));
  EXPECT_EQ(problem.size(), 4);
}

TEST(ProblemApply, EveryMutationAdvancesTheEpochByOne) {
  CleaningProblem problem = MakeProblem(3);
  EXPECT_EQ(problem.epoch(), 0u);
  problem.Apply(ProblemDelta::SetCost(0, 2.0));
  EXPECT_EQ(problem.epoch(), 1u);
  problem.Clean(1, 5.0);
  EXPECT_EQ(problem.epoch(), 2u);
  problem.ReplaceDistribution(2, DiscreteDistribution({1}, {1}));
  EXPECT_EQ(problem.epoch(), 3u);
  problem.set_current_value(0, 9.0);
  EXPECT_EQ(problem.epoch(), 4u);
}

// --- ChangesSince -----------------------------------------------------------

TEST(ChangesSince, CurrentEpochYieldsAnEmptySummary) {
  CleaningProblem problem = MakeProblem(3);
  CleaningProblem::ProblemChanges changes;
  ASSERT_TRUE(problem.ChangesSince(problem.epoch(), &changes));
  EXPECT_TRUE(changes.dist_changed.empty());
  EXPECT_FALSE(changes.values_changed);
  EXPECT_FALSE(changes.costs_changed);
  EXPECT_FALSE(changes.structure_changed);
}

TEST(ChangesSince, UnionsTheInterveningMutations) {
  CleaningProblem problem = MakeProblem(5);
  std::uint64_t stamp = problem.epoch();
  // Out-of-order dist changes, one duplicated, plus a cost change.
  problem.Apply(ProblemDelta::ReplaceDistribution(
      3, DiscreteDistribution({1, 2}, {0.5, 0.5})));
  problem.Apply(ProblemDelta::ReplaceDistribution(
      1, DiscreteDistribution({3, 4}, {0.5, 0.5})));
  problem.Apply(ProblemDelta::ReplaceDistribution(
      3, DiscreteDistribution({5, 6}, {0.5, 0.5})));
  problem.Apply(ProblemDelta::SetCost(0, 3.0));

  CleaningProblem::ProblemChanges changes;
  ASSERT_TRUE(problem.ChangesSince(stamp, &changes));
  EXPECT_EQ(changes.dist_changed, (std::vector<int>{1, 3}));  // sorted, unique
  EXPECT_TRUE(changes.costs_changed);
  EXPECT_FALSE(changes.values_changed);
  EXPECT_FALSE(changes.structure_changed);

  // Clean touches both the distribution and the current value.
  stamp = problem.epoch();
  problem.Apply(ProblemDelta::Clean(2, 12.0));
  ASSERT_TRUE(problem.ChangesSince(stamp, &changes));
  EXPECT_EQ(changes.dist_changed, (std::vector<int>{2}));
  EXPECT_TRUE(changes.values_changed);

  // Structural change.
  stamp = problem.epoch();
  problem.Apply(ProblemDelta::AddObject(MakeObject("tail")));
  ASSERT_TRUE(problem.ChangesSince(stamp, &changes));
  EXPECT_TRUE(changes.structure_changed);
}

TEST(ChangesSince, CopiesInheritTheJournal) {
  CleaningProblem problem = MakeProblem(3);
  std::uint64_t stamp = problem.epoch();
  problem.Apply(ProblemDelta::SetCost(1, 4.0));
  CleaningProblem copy(problem);
  EXPECT_EQ(copy.epoch(), problem.epoch());
  CleaningProblem::ProblemChanges changes;
  ASSERT_TRUE(copy.ChangesSince(stamp, &changes));
  EXPECT_TRUE(changes.costs_changed);
}

TEST(ChangesSince, AssignmentForcesAFullRebuild) {
  CleaningProblem problem = MakeProblem(3);
  CleaningProblem other = MakeProblem(4);
  std::uint64_t stamp = problem.epoch();
  problem = other;  // whole-instance replacement
  EXPECT_GT(problem.epoch(), stamp);
  CleaningProblem::ProblemChanges changes;
  EXPECT_FALSE(problem.ChangesSince(stamp, &changes));
  // But the post-assignment epoch is a valid stamp again.
  EXPECT_TRUE(problem.ChangesSince(problem.epoch(), &changes));
}

TEST(ChangesSince, JournalOverrunForcesAFullRebuild) {
  CleaningProblem problem = MakeProblem(3);
  std::uint64_t old_stamp = problem.epoch();
  for (int i = 0; i < 300; ++i) {  // > kJournalCapacity (256)
    problem.Apply(ProblemDelta::SetCost(i % 3, 1.0 + i));
  }
  CleaningProblem::ProblemChanges changes;
  EXPECT_FALSE(problem.ChangesSince(old_stamp, &changes));
  // A recent stamp is still covered.
  EXPECT_TRUE(problem.ChangesSince(problem.epoch() - 10, &changes));
  EXPECT_TRUE(changes.costs_changed);
}

// --- Partial planes rebuild -------------------------------------------------

TEST(PlanesDowndate, OneDistDeltaRepacksOneRow) {
  CleaningProblem problem = MakeProblem(5);
  std::shared_ptr<const DistPlanes> before = problem.planes_ptr();
  EXPECT_EQ(problem.plane_rows_rebuilt(), 5);  // lazy first build: all rows

  problem.Apply(ProblemDelta::ReplaceDistribution(
      2, DiscreteDistribution({1.0, 9.0}, {0.25, 0.75})));
  std::shared_ptr<const DistPlanes> after = problem.planes_ptr();
  EXPECT_NE(after, before);
  EXPECT_EQ(problem.plane_rows_rebuilt(), 6);  // +1, not +5
  EXPECT_EQ(after->rows_rebuilt(), 1);

  // The repacked row carries the new atoms; untouched rows are bit-equal.
  EXPECT_EQ(after->support_size(2), 2);
  EXPECT_EQ(after->values(2)[1], 9.0);
  EXPECT_EQ(after->probs(2)[1], 0.75);
  for (int i : {0, 1, 3, 4}) {
    ASSERT_EQ(after->support_size(i), before->support_size(i));
    for (int a = 0; a < after->support_size(i); ++a) {
      EXPECT_EQ(after->values(i)[a], before->values(i)[a]);
      EXPECT_EQ(after->probs(i)[a], before->probs(i)[a]);
    }
  }
}

TEST(PlanesDowndate, BatchedDeltasRepackOnlyTheTouchedRows) {
  CleaningProblem problem = MakeProblem(6);
  problem.planes();  // force the lazy full build (6 rows)
  problem.Apply(ProblemDelta::Clean(1, 10.0));
  problem.Apply(ProblemDelta::ReplaceDistribution(
      4, DiscreteDistribution({2.0}, {1.0})));
  problem.Apply(ProblemDelta::Clean(1, 11.0));  // same row twice: one repack
  const DistPlanes& planes = problem.planes();
  EXPECT_EQ(planes.rows_rebuilt(), 2);
  EXPECT_EQ(problem.plane_rows_rebuilt(), 8);  // 6 (full) + 2 (partial)
  EXPECT_TRUE(planes.is_point_mass(1));
  EXPECT_TRUE(planes.is_point_mass(4));
}

TEST(PlanesDowndate, StructuralDeltaRebuildsFully) {
  CleaningProblem problem = MakeProblem(4);
  problem.planes();  // 4 rows
  problem.Apply(ProblemDelta::AddObject(MakeObject("tail")));
  const DistPlanes& planes = problem.planes();
  EXPECT_EQ(planes.num_objects(), 5);
  EXPECT_EQ(planes.rows_rebuilt(), 5);
  EXPECT_EQ(problem.plane_rows_rebuilt(), 9);
}

// --- EvalEngine epoch downdating -------------------------------------------

// A problem-reading objective whose full evaluations are observable: the
// value of T is the sum of dist means of T's members (so a stale memo
// entry would be numerically wrong after a ReplaceDistribution).
struct CountingObjective {
  const CleaningProblem* problem;
  int* calls;
  double operator()(const std::vector<int>& cleaned) const {
    ++*calls;
    double value = 0.0;
    for (int i : cleaned) value += problem->object(i).dist.Mean();
    return value;
  }
};

TEST(EngineDowndate, CleanedSubsetPolicyEvictsOnlyIntersectingSets) {
  CleaningProblem problem = MakeProblem(4);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.BindProblem(&problem, CacheDependency::kCleanedSubset);

  engine.Evaluate({0});
  engine.Evaluate({1});
  engine.Evaluate({0, 1});
  EXPECT_EQ(calls, 3);

  problem.Apply(ProblemDelta::ReplaceDistribution(
      0, DiscreteDistribution({100.0}, {1.0})));

  // {1} does not intersect the change: served from the surviving memo.
  std::int64_t hits = engine.stats().cache_hits;
  engine.Evaluate({1});
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(engine.stats().cache_hits, hits + 1);

  // {0} and {0,1} were evicted and recompute against the new state.
  EXPECT_EQ(engine.Evaluate({0}), 100.0);
  EXPECT_EQ(engine.Evaluate({0, 1}),
            100.0 + problem.object(1).dist.Mean());
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(engine.stats().cache_evictions, 2);
}

TEST(EngineDowndate, AllObjectsPolicyFlushesOnAnyDistChange) {
  CleaningProblem problem = MakeProblem(4);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.BindProblem(&problem, CacheDependency::kAllObjects);

  engine.Evaluate({0});
  engine.Evaluate({1});
  engine.Evaluate({2});
  EXPECT_EQ(calls, 3);

  problem.Apply(ProblemDelta::ReplaceDistribution(
      3, DiscreteDistribution({1.0}, {1.0})));
  engine.Evaluate({0});  // under kAllObjects even disjoint sets recompute
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(engine.stats().cache_evictions, 3);
}

TEST(EngineDowndate, CostOnlyChangesEvictNothing) {
  CleaningProblem problem = MakeProblem(4);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.BindProblem(&problem, CacheDependency::kAllObjects);
  engine.Evaluate({0, 1});
  problem.Apply(ProblemDelta::SetCost(0, 9.0));
  engine.Evaluate({0, 1});  // objective values never read costs
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(engine.stats().cache_evictions, 0);
}

TEST(EngineDowndate, ValueAndStructuralChangesFlushEverything) {
  CleaningProblem problem = MakeProblem(4);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.BindProblem(&problem, CacheDependency::kCleanedSubset);
  engine.Evaluate({0});
  engine.Evaluate({1});

  problem.Apply(ProblemDelta::SetCurrentValue(3, 0.0));
  engine.Evaluate({0});
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(engine.stats().cache_evictions, 2);

  engine.Evaluate({1});  // re-warm
  problem.Apply(ProblemDelta::AddObject(MakeObject("tail")));
  engine.Evaluate({1});
  EXPECT_EQ(calls, 5);
}

TEST(EngineDowndate, JournalOverrunFallsBackToAFullFlush) {
  CleaningProblem problem = MakeProblem(3);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.BindProblem(&problem, CacheDependency::kCleanedSubset);
  engine.Evaluate({1});
  // Push the journal past its capacity with cost-only changes; the engine
  // can no longer prove {1} untouched and must flush.
  for (int i = 0; i < 300; ++i) {
    problem.Apply(ProblemDelta::SetCost(0, 1.0 + i));
  }
  engine.Evaluate({1});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(engine.stats().cache_evictions, 1);
}

TEST(EngineDowndate, UnboundEnginesNeverSync) {
  CleaningProblem problem = MakeProblem(3);
  int calls = 0;
  EvalEngine engine(CountingObjective{&problem, &calls},
                    OptimizeDirection::kMinimize);
  engine.Evaluate({0});
  problem.Apply(ProblemDelta::ReplaceDistribution(
      0, DiscreteDistribution({5.0}, {1.0})));
  engine.Evaluate({0});  // stale by design: unbound engines skip the check
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(engine.stats().cache_evictions, 0);
}

}  // namespace
}  // namespace factcheck
