// Cross-validation of the Theorem-3.8 structured EV evaluator against the
// exact enumeration evaluator of core/ev.h, plus the incremental greedy.

#include <gtest/gtest.h>

#include "claims/ev_fast.h"
#include "core/delta.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

struct Instance {
  CleaningProblem problem;
  PerturbationSet context;
  double reference;
};

Instance MakeOverlapping(uint64_t seed, int n = 9, int width = 3) {
  Instance s{data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, seed,
                              {.size = n, .min_support = 2, .max_support = 3}),
          SlidingWindowSumPerturbations(n, width, 0, 1.5), 0.0};
  s.reference = s.context.original.Evaluate(s.problem.CurrentValues());
  return s;
}

Instance MakeDisjoint(uint64_t seed, int n = 12, int width = 3) {
  Instance s{data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, seed,
                              {.size = n, .min_support = 2, .max_support = 3}),
          NonOverlappingWindowSumPerturbations(n, width, 0, 1.5), 0.0};
  s.reference = s.context.original.Evaluate(s.problem.CurrentValues());
  return s;
}

class EvFastAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, QualityMeasure>> {};

TEST_P(EvFastAgreementTest, MatchesBruteForceEnumerationOverlapping) {
  auto [seed, measure] = GetParam();
  Instance s = MakeOverlapping(seed);
  ClaimEvEvaluator fast(&s.problem, &s.context, measure, s.reference);
  ClaimQualityFunction f(&s.context, measure, s.reference);
  Rng rng(seed);
  // Check EV on several random cleaned sets, plus the extremes.
  std::vector<std::vector<int>> sets = {{}, {0, 1, 2, 3, 4, 5, 6, 7, 8}};
  for (int t = 0; t < 4; ++t) {
    int k = rng.UniformInt(1, 5);
    sets.push_back(rng.SampleWithoutReplacement(9, k));
  }
  for (const auto& cleaned : sets) {
    double exact = ExpectedPosteriorVariance(f, s.problem, cleaned);
    double fast_ev = fast.EV(cleaned);
    EXPECT_NEAR(fast_ev, exact, 1e-7 * (1.0 + exact))
        << "seed " << seed << " measure " << static_cast<int>(measure);
  }
}

TEST_P(EvFastAgreementTest, MatchesBruteForceEnumerationDisjoint) {
  auto [seed, measure] = GetParam();
  Instance s = MakeDisjoint(seed);
  ClaimEvEvaluator fast(&s.problem, &s.context, measure, s.reference);
  EXPECT_EQ(fast.num_overlapping_pairs(), 0);
  ClaimQualityFunction f(&s.context, measure, s.reference);
  Rng rng(seed + 99);
  for (int t = 0; t < 4; ++t) {
    int k = rng.UniformInt(0, 6);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(12, k);
    double exact = ExpectedPosteriorVariance(f, s.problem, cleaned);
    EXPECT_NEAR(fast.EV(cleaned), exact, 1e-7 * (1.0 + exact));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMeasures, EvFastAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(QualityMeasure::kBias,
                                         QualityMeasure::kDuplicity,
                                         QualityMeasure::kFragility)));

TEST(EvFastTest, OverlappingPairsDetected) {
  Instance s = MakeOverlapping(3);
  ClaimEvEvaluator fast(&s.problem, &s.context, QualityMeasure::kDuplicity,
                        s.reference);
  EXPECT_GT(fast.num_overlapping_pairs(), 0);
  // Sliding width-3 windows: interior objects belong to 3 claims.
  EXPECT_EQ(fast.MaxClaimDegree(), 3);
}

TEST(EvFastTest, DisjointClaimsHaveDegreeOne) {
  Instance s = MakeDisjoint(3);
  ClaimEvEvaluator fast(&s.problem, &s.context, QualityMeasure::kDuplicity,
                        s.reference);
  EXPECT_EQ(fast.num_overlapping_pairs(), 0);
  EXPECT_EQ(fast.MaxClaimDegree(), 1);
}

TEST(EvFastTest, MomentsMatchEnumeration) {
  Instance s = MakeOverlapping(7);
  for (QualityMeasure measure :
       {QualityMeasure::kBias, QualityMeasure::kDuplicity,
        QualityMeasure::kFragility}) {
    ClaimEvEvaluator fast(&s.problem, &s.context, measure, s.reference);
    ClaimQualityFunction f(&s.context, measure, s.reference);
    QualityMoments moments = fast.Moments();
    EXPECT_NEAR(moments.mean, ExpectedValue(f, s.problem),
                1e-7 * (1 + std::abs(moments.mean)));
    EXPECT_NEAR(moments.variance, PriorVariance(f, s.problem),
                1e-7 * (1 + moments.variance));
  }
}

TEST(EvFastTest, MomentsAfterCleaningReflectPointMasses) {
  Instance s = MakeDisjoint(11);
  ClaimEvEvaluator before(&s.problem, &s.context, QualityMeasure::kDuplicity,
                          s.reference);
  double var_before = before.Moments().variance;
  CleaningProblem cleaned = s.problem;
  for (int i : s.context.perturbations[0].References()) {
    cleaned.Clean(i, cleaned.object(i).dist.Mean());
  }
  ClaimEvEvaluator after(&cleaned, &s.context, QualityMeasure::kDuplicity,
                         s.reference);
  EXPECT_LE(after.Moments().variance, var_before + 1e-9);
}

TEST(EvFastTest, IncrementalGreedyMatchesGenericAdaptiveGreedy) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    Instance s = MakeOverlapping(seed, /*n=*/8, /*width=*/3);
    ClaimEvEvaluator fast(&s.problem, &s.context, QualityMeasure::kDuplicity,
                          s.reference);
    double budget = s.problem.TotalCost() * 0.45;
    Selection incremental = fast.GreedyMinVar(budget);
    Selection generic = AdaptiveGreedyMinimize(
        s.problem.Costs(), budget,
        [&](const std::vector<int>& t) { return fast.EV(t); });
    // Same achieved EV (tie-breaking may differ, value must match).
    EXPECT_NEAR(fast.EV(incremental.cleaned), fast.EV(generic.cleaned),
                1e-7)
        << "seed " << seed;
    EXPECT_LE(incremental.cost, budget);
  }
}

TEST(EvFastTest, GreedyReducesEvMonotonically) {
  Instance s = MakeOverlapping(13);
  ClaimEvEvaluator fast(&s.problem, &s.context, QualityMeasure::kFragility,
                        s.reference);
  Selection sel = fast.GreedyMinVar(s.problem.TotalCost());
  std::vector<int> prefix;
  double prev = fast.PriorVariance();
  for (int i : sel.order) {
    prefix.push_back(i);
    double ev = fast.EV(prefix);
    EXPECT_LE(ev, prev + 1e-9);
    prev = ev;
  }
}

TEST(EvFastTest, FullBudgetDrivesEvToZero) {
  Instance s = MakeOverlapping(17);
  ClaimEvEvaluator fast(&s.problem, &s.context, QualityMeasure::kDuplicity,
                        s.reference);
  Selection sel = fast.GreedyMinVar(s.problem.TotalCost() + 1);
  EXPECT_NEAR(fast.EV(sel.cleaned), 0.0, 1e-9);
}

// The stale-EVFast-base bugfix: after ReplaceDistribution the sparse base
// terms are recomputed on the next call, and the SoA planes path agrees
// bit-for-bit with the legacy AoS oracle path on the mutated problem.
TEST(EvFastTest, PlanesOnAndOffAgreeAfterMutation) {
  for (uint64_t seed : {2u, 8u}) {
    Instance s = MakeOverlapping(seed);
    ClaimEvEvaluator planes(&s.problem, &s.context, QualityMeasure::kDuplicity,
                            s.reference, StrengthDirection::kHigherIsStronger,
                            /*use_planes=*/true);
    ClaimEvEvaluator legacy(&s.problem, &s.context, QualityMeasure::kDuplicity,
                            s.reference, StrengthDirection::kHigherIsStronger,
                            /*use_planes=*/false);
    std::vector<std::vector<int>> sets = {{}, {0, 4}, {1, 2, 7}, {3, 5, 6, 8}};
    // Warm both paths' caches on the pre-mutation state.  The paths agree
    // to rounding, not bit pattern: planes aggregates EV as base+delta.
    for (const auto& cleaned : sets) {
      double expect = legacy.EV(cleaned);
      EXPECT_NEAR(planes.EV(cleaned), expect, 1e-9 * (1.0 + std::abs(expect)));
    }

    // Mutate through the delta path: a support change on a claim-shared
    // object, a Clean (dist + value), and a cost change (no-op for EV).
    s.problem.Apply(ProblemDelta::ReplaceDistribution(
        1, DiscreteDistribution({-2.0, 6.0, 40.0}, {0.2, 0.6, 0.2})));
    s.problem.Apply(
        ProblemDelta::Clean(4, s.problem.object(4).dist.Mean()));
    s.problem.Apply(ProblemDelta::SetCost(0, 7.0));

    ClaimEvEvaluator fresh(&s.problem, &s.context, QualityMeasure::kDuplicity,
                           s.reference);
    for (const auto& cleaned : sets) {
      const double want = fresh.EV(cleaned);
      EXPECT_NEAR(planes.EV(cleaned), want, 1e-9 * (1.0 + std::abs(want)))
          << "seed " << seed;
      EXPECT_NEAR(legacy.EV(cleaned), want, 1e-9 * (1.0 + std::abs(want)))
          << "seed " << seed;
    }
    const double budget = s.problem.TotalCost() * 0.4;
    Selection from_planes = planes.GreedyMinVar(budget);
    Selection from_legacy = legacy.GreedyMinVar(budget);
    Selection from_fresh = fresh.GreedyMinVar(budget);
    EXPECT_EQ(from_planes.cleaned, from_fresh.cleaned);
    EXPECT_EQ(from_legacy.cleaned, from_fresh.cleaned);
    EXPECT_EQ(from_planes.order, from_fresh.order);
  }
}

TEST(EvFastTest, PointMassObjectsContributeNothing) {
  Instance s = MakeDisjoint(19);
  // Clean everything up front: EV must be 0 without enumeration blowups.
  CleaningProblem cleaned = s.problem;
  for (int i = 0; i < cleaned.size(); ++i) {
    cleaned.Clean(i, cleaned.object(i).dist.Mean());
  }
  ClaimEvEvaluator fast(&cleaned, &s.context, QualityMeasure::kBias,
                        s.reference);
  EXPECT_NEAR(fast.PriorVariance(), 0.0, 1e-12);
}

}  // namespace
}  // namespace factcheck
