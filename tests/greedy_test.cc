#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

TEST(RandomSelectTest, RespectsBudgetAndIsDeterministicPerSeed) {
  std::vector<double> costs = {3, 1, 4, 1, 5};
  Rng rng1(5), rng2(5);
  Selection a = RandomSelect(costs, 6.0, rng1);
  Selection b = RandomSelect(costs, 6.0, rng2);
  EXPECT_EQ(a.cleaned, b.cleaned);
  EXPECT_LE(a.cost, 6.0);
}

TEST(RandomSelectTest, FullBudgetSelectsEverything) {
  std::vector<double> costs = {1, 2, 3};
  Rng rng(9);
  Selection sel = RandomSelect(costs, 6.0, rng);
  EXPECT_EQ(sel.cleaned.size(), 3u);
}

TEST(StaticGreedyTest, CostAwareOrdersByDensity) {
  // benefits/costs: item0 2/1=2, item1 9/3=3, item2 4/4=1; budget 4.
  Selection sel = StaticGreedy({2, 9, 4}, {1, 3, 4}, 4.0);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0, 1}));
}

TEST(StaticGreedyTest, CostBlindOrdersByBenefit) {
  GreedyOptions options;
  options.cost_aware = false;
  // Highest benefit first: item2 (4) then item1 (9)? No: benefit desc =
  // {1:9, 2:4, 0:2}; budget 4 fits item1 (3) then item0 (1).
  Selection sel = StaticGreedy({2, 9, 4}, {1, 3, 4}, 4.0, options);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0, 1}));
}

TEST(StaticGreedyTest, FinalCheckRestoresTwoApprox) {
  // Paper's Section 3.1 example: density greedy picks the tiny item; the
  // final check must switch to the single big item.
  Selection sel = StaticGreedy({0.1, 10.0}, {0.0001, 2.0}, 2.0);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
}

TEST(StaticGreedyTest, FinalCheckCanBeDisabled) {
  GreedyOptions options;
  options.final_check = false;
  Selection sel = StaticGreedy({0.1, 10.0}, {0.0001, 2.0}, 2.0, options);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0}));
}

TEST(StaticGreedyTest, OrderRecordsPickSequence) {
  Selection sel = StaticGreedy({1, 5, 3}, {1, 1, 1}, 3.0);
  EXPECT_EQ(sel.order, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0, 1, 2}));
}

TEST(AdaptiveGreedyTest, MinimizeModularObjectiveMatchesStaticChoice) {
  // Objective: sum of weights of *uncleaned* items (modular MinVar).
  std::vector<double> weights = {5, 1, 3};
  std::vector<double> costs = {1, 1, 1};
  SetObjective objective = [&](const std::vector<int>& t) {
    double total = 5 + 1 + 3;
    for (int i : t) total -= weights[i];
    return total;
  };
  Selection sel = AdaptiveGreedyMinimize(costs, 2.0, objective);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0, 2}));
}

TEST(AdaptiveGreedyTest, MaximizeStopsWhenNoGain) {
  // Adding item 1 hurts the objective; greedy must stop after item 0 even
  // though budget remains (Fig 12b's "refuses to clean more" behaviour).
  std::vector<double> gain = {2.0, -1.0};
  SetObjective objective = [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += gain[i];
    return acc;
  };
  Selection sel = AdaptiveGreedyMaximize({1, 1}, 2.0, objective);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0}));
}

TEST(AdaptiveGreedyTest, MatchesBruteForceOnModularInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 6;
    std::vector<double> weights(n), costs(n);
    for (int i = 0; i < n; ++i) {
      weights[i] = rng.Uniform(0, 10);
      costs[i] = rng.Uniform(0.5, 3);
    }
    double budget = rng.Uniform(1, 8);
    SetObjective objective = [&](const std::vector<int>& t) {
      double total = 0;
      for (double w : weights) total += w;
      for (int i : t) total -= weights[i];
      return total;
    };
    Selection greedy = AdaptiveGreedyMinimize(costs, budget, objective);
    Selection opt = BruteForceMinimize(costs, budget, objective);
    // Greedy with final check is a 2-approximation on the removed weight.
    double greedy_removed = objective({}) - objective(greedy.cleaned);
    double opt_removed = objective({}) - objective(opt.cleaned);
    EXPECT_GE(greedy_removed, opt_removed / 2 - 1e-9) << "trial " << trial;
  }
}

TEST(GreedyNaiveTest, IgnoresUnreferencedObjects) {
  CleaningProblem problem =
      data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, 3,
                          {.size = 4, .min_support = 3, .max_support = 3});
  LinearQueryFunction f({1, 2}, {1.0, 1.0});
  Selection sel = GreedyNaive(f, problem, problem.TotalCost());
  for (int i : sel.cleaned) {
    EXPECT_TRUE(i == 1 || i == 2) << i;
  }
}

TEST(GreedyNaiveCostBlindTest, PicksHighestVarianceFirst) {
  std::vector<UncertainObject> objects(3);
  for (int i = 0; i < 3; ++i) {
    objects[i].current_value = 0;
    objects[i].cost = (i == 2) ? 100.0 : 1.0;  // object 2 very expensive
    double spread = (i == 2) ? 10.0 : 1.0;     // ...but most uncertain
    objects[i].dist =
        DiscreteDistribution({-spread, spread}, {0.5, 0.5});
  }
  CleaningProblem problem(std::move(objects));
  LinearQueryFunction f({0, 1, 2}, {1, 1, 1});
  // Cost-blind puts object 2 first; with budget 101 it takes 2 then 0/1.
  Selection blind = GreedyNaiveCostBlind(f, problem, 101.0);
  EXPECT_TRUE(std::find(blind.cleaned.begin(), blind.cleaned.end(), 2) !=
              blind.cleaned.end());
  // Cost-aware naive avoids object 2 at budget 2 and cleans both cheap ones.
  Selection aware = GreedyNaive(f, problem, 2.0);
  EXPECT_EQ(aware.cleaned, (std::vector<int>{0, 1}));
}

TEST(GreedyMinVarTest, BeatsOrMatchesGreedyNaiveOnIndicatorObjective) {
  // Example 6 setup is covered in paper_examples_test; here: random
  // indicator instances, GreedyMinVar's achieved EV <= GreedyNaive's.
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    CleaningProblem problem = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 6, .min_support = 2, .max_support = 3});
    LambdaQueryFunction f({0, 1, 2, 3, 4, 5},
                          [](const std::vector<double>& x) {
                            double s = 0;
                            for (double v : x) s += v;
                            return s < 300.0 ? 1.0 : 0.0;
                          });
    double budget = problem.TotalCost() * 0.3;
    Selection minvar = GreedyMinVar(f, problem, budget);
    Selection naive = GreedyNaive(f, problem, budget);
    EXPECT_LE(ExpectedPosteriorVariance(f, problem, minvar.cleaned),
              ExpectedPosteriorVariance(f, problem, naive.cleaned) + 1e-9)
        << "seed " << seed;
  }
}

TEST(GreedyMaxPrTest, PrefersTheObjectWithMoreMassBelowThreshold) {
  // Example 5: GreedyMaxPr must clean X2 (prob 1/3 beats 1/5).
  std::vector<UncertainObject> objects(2);
  objects[0].current_value = 1.0;
  objects[0].dist =
      DiscreteDistribution({0, 0.5, 1, 1.5, 2}, {0.2, 0.2, 0.2, 0.2, 0.2});
  objects[0].cost = 1.0;
  objects[1].current_value = 1.0;
  objects[1].dist = DiscreteDistribution({1.0 / 3, 1.0, 5.0 / 3},
                                         {1.0 / 3, 1.0 / 3, 1.0 / 3});
  objects[1].cost = 1.0;
  CleaningProblem problem(std::move(objects));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  Selection sel = GreedyMaxPr(f, problem, 1.0, 2.0 - 17.0 / 12);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
}

TEST(GreedyDepTest, UsesCovarianceKnowledge) {
  // Two perfectly correlated cheap objects and one independent expensive
  // one: cleaning either of the correlated pair resolves both; the
  // dependency-aware greedy should never waste budget cleaning the second
  // member of the pair.
  Matrix cov(3, 3);
  cov(0, 0) = cov(1, 1) = 4.0;
  cov(0, 1) = cov(1, 0) = 3.999999;
  cov(2, 2) = 4.0;
  MultivariateNormal model({0, 0, 0}, cov);
  LinearQueryFunction f({0, 1, 2}, {1, 1, 1});
  Selection sel = GreedyDep(f, model, {1, 1, 1}, 2.0);
  ASSERT_EQ(sel.cleaned.size(), 2u);
  // Must include object 2 (the only way to resolve its variance).
  EXPECT_TRUE(std::find(sel.cleaned.begin(), sel.cleaned.end(), 2) !=
              sel.cleaned.end());
}

TEST(BruteForceTest, FindsExactOptimumOnSmallInstance) {
  std::vector<double> weights = {5, 4, 3};
  std::vector<double> costs = {3, 2, 2};
  SetObjective objective = [&](const std::vector<int>& t) {
    double total = 12;
    for (int i : t) total -= weights[i];
    return total;
  };
  Selection opt = BruteForceMinimize(costs, 4.0, objective);
  // Best: {1, 2} removes 7 at cost 4 (vs {0} removing 5).
  EXPECT_EQ(opt.cleaned, (std::vector<int>{1, 2}));
}

TEST(BruteForceTest, MaximizeMirrorsMinimize) {
  std::vector<double> gain = {1, 2, 4};
  SetObjective objective = [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += gain[i];
    return acc;
  };
  Selection opt = BruteForceMaximize({1, 1, 1}, 2.0, objective);
  EXPECT_EQ(opt.cleaned, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace factcheck
