#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/ev.h"
#include "core/modular.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

struct ModularInstance {
  LinearQueryFunction f{{}, {}};
  std::vector<double> variances;
  std::vector<double> costs;
  std::vector<double> weights;
};

ModularInstance MakeInstance(uint64_t seed, int n) {
  Rng rng(seed);
  ModularInstance inst;
  std::vector<double> coeffs(n);
  inst.variances.resize(n);
  inst.costs.resize(n);
  for (int i = 0; i < n; ++i) {
    coeffs[i] = rng.Uniform(-2, 2);
    inst.variances[i] = rng.Uniform(0.5, 20);
    inst.costs[i] = rng.Uniform(0.5, 5);
  }
  inst.f = LinearQueryFunction::FromDense(coeffs);
  inst.weights = MinVarModularWeights(inst.f, inst.variances, n);
  return inst;
}

TEST(MinVarModularWeightsTest, SquaredCoefficientTimesVariance) {
  LinearQueryFunction f({0, 2}, {3.0, -2.0});
  std::vector<double> w = MinVarModularWeights(f, {1.0, 5.0, 2.0}, 3);
  EXPECT_DOUBLE_EQ(w[0], 9.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 8.0);
}

TEST(ModularRemainingVarianceTest, SubtractsCleanedWeights) {
  std::vector<double> w = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ModularRemainingVariance(w, {}), 6.0);
  EXPECT_DOUBLE_EQ(ModularRemainingVariance(w, {1}), 4.0);
  EXPECT_DOUBLE_EQ(ModularRemainingVariance(w, {0, 1, 2}), 0.0);
}

class ModularSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(ModularSolverTest, OptimumDpMatchesBruteForce) {
  ModularInstance inst = MakeInstance(GetParam(), 9);
  Rng rng(GetParam() + 100);
  double budget = rng.Uniform(2, 12);
  // Integerize costs up front so DP rounding is not a factor.
  for (auto& c : inst.costs) c = std::round(c);
  for (auto& c : inst.costs) c = std::max(1.0, c);
  Selection dp = MinVarOptimumDp(inst.f, inst.variances, inst.costs, budget,
                                 /*cost_scale=*/1.0);
  SetObjective remaining = [&](const std::vector<int>& t) {
    return ModularRemainingVariance(inst.weights, t);
  };
  Selection opt =
      BruteForceMinimize(inst.costs, std::floor(budget), remaining);
  EXPECT_NEAR(remaining(dp.cleaned), remaining(opt.cleaned), 1e-9)
      << "seed " << GetParam();
  EXPECT_LE(dp.cost, budget + 1e-9);
}

TEST_P(ModularSolverTest, FptasWithinEpsOfDp) {
  ModularInstance inst = MakeInstance(GetParam() + 500, 10);
  double budget = 8.0;
  double eps = 0.1;
  Selection fptas =
      MinVarFptas(inst.f, inst.variances, inst.costs, budget, eps);
  SetObjective remaining = [&](const std::vector<int>& t) {
    return ModularRemainingVariance(inst.weights, t);
  };
  Selection opt = BruteForceMinimize(inst.costs, budget, remaining);
  double removed_fptas = remaining({}) - remaining(fptas.cleaned);
  double removed_opt = remaining({}) - remaining(opt.cleaned);
  EXPECT_GE(removed_fptas, (1.0 - eps) * removed_opt - 1e-9)
      << "seed " << GetParam();
  EXPECT_LE(fptas.cost, budget + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularSolverTest, ::testing::Range(1, 13));

TEST(ModularSolverTest, DpSelectionMinimizesTrueEv) {
  // End-to-end: the DP's selection minimizes the *actual* expected
  // posterior variance of the affine query (Lemma 3.1 equivalence).
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 77,
      {.size = 7, .min_support = 2, .max_support = 3});
  std::vector<double> coeffs = {1, -1, 2, 0.5, 1, -0.5, 1};
  LinearQueryFunction f = LinearQueryFunction::FromDense(coeffs);
  std::vector<double> unit_costs(7, 1.0);
  double budget = 3.0;
  Selection dp = MinVarOptimumDp(f, p.Variances(), unit_costs, budget, 1.0);
  SetObjective true_ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, p, t);
  };
  Selection opt = BruteForceMinimize(unit_costs, budget, true_ev);
  EXPECT_NEAR(true_ev(dp.cleaned), true_ev(opt.cleaned), 1e-9);
}

TEST(MaxPrSolversTest, AgreeWithMinVarSolversOnSameWeights) {
  // MaxPr weights are a_i^2 sigma_i^2 = MinVar weights with variances
  // sigma_i^2 — the Theorem 3.9 alignment in code form.
  ModularInstance inst = MakeInstance(31, 8);
  std::vector<double> stddevs(8);
  for (int i = 0; i < 8; ++i) stddevs[i] = std::sqrt(inst.variances[i]);
  double budget = 7.0;
  Selection minvar =
      MinVarOptimumDp(inst.f, inst.variances, inst.costs, budget);
  Selection maxpr = MaxPrOptimumDp(inst.f, stddevs, inst.costs, budget);
  EXPECT_EQ(minvar.cleaned, maxpr.cleaned);
  Selection minvar_fp =
      MinVarFptas(inst.f, inst.variances, inst.costs, budget, 0.25);
  Selection maxpr_fp = MaxPrFptas(inst.f, stddevs, inst.costs, budget, 0.25);
  EXPECT_EQ(minvar_fp.cleaned, maxpr_fp.cleaned);
}

}  // namespace
}  // namespace factcheck
