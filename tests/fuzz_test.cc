// Robustness sweeps: malformed inputs must fail cleanly (no crashes, no
// aborts on user data), and randomized differential checks tie the fast
// evaluators to Monte Carlo ground truth on instance shapes the unit
// suites don't generate.

#include <gtest/gtest.h>

#include "claims/ev_fast.h"
#include "data/problem_io.h"
#include "data/synthetic.h"
#include "montecarlo/sampler.h"
#include "relational/csv.h"
#include "util/random.h"

namespace factcheck {
namespace {

std::string RandomGarbage(Rng& rng, int length) {
  static const char kAlphabet[] =
      "abc019,;.\n\r\t -+eE\"'NaNinf";
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

TEST(FuzzTest, CsvParserNeverCrashesOnGarbage) {
  Rng rng(404);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage = RandomGarbage(rng, rng.UniformInt(0, 120));
    std::string error;
    auto table = TableFromCsv(
        garbage, {ColumnType::kInt, ColumnType::kDouble}, &error);
    if (!table.has_value()) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(FuzzTest, CsvParserAcceptsOnlyConsistentRows) {
  // Random near-valid inputs: header plus rows of random arity.
  Rng rng(405);
  for (int trial = 0; trial < 100; ++trial) {
    std::string csv = "a,b\n";
    int rows = rng.UniformInt(0, 5);
    bool all_ok = true;
    for (int r = 0; r < rows; ++r) {
      int cells = rng.UniformInt(1, 3);
      if (cells != 2) all_ok = false;
      for (int c = 0; c < cells; ++c) {
        if (c) csv += ",";
        csv += std::to_string(rng.UniformInt(0, 99));
      }
      csv += "\n";
    }
    auto table = TableFromCsv(csv, {ColumnType::kInt, ColumnType::kInt});
    EXPECT_EQ(table.has_value(), all_ok) << csv;
  }
}

TEST(FuzzTest, ProblemIoNeverCrashesOnGarbage) {
  Rng rng(406);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage =
        "label,current,cost,support,probs\n" +
        RandomGarbage(rng, rng.UniformInt(0, 150));
    std::string error;
    auto problem = data::ProblemFromCsv(garbage, &error);
    if (!problem.has_value()) {
      EXPECT_FALSE(error.empty());
    } else {
      // Whatever parsed must be a valid instance.
      EXPECT_GT(problem->size(), 0);
      for (int i = 0; i < problem->size(); ++i) {
        EXPECT_GT(problem->object(i).cost, 0.0);
      }
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, FastEvMatchesMonteCarloOnWiderInstances) {
  // Instances wider than the exact-enumeration cross-checks can afford:
  // 30 objects, sliding windows of width 5 (heavy pair structure).
  uint64_t seed = GetParam();
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 30, .min_support = 2, .max_support = 5});
  PerturbationSet context = SlidingWindowSumPerturbations(30, 5, 0, 1.2);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator fast(&p, &context, QualityMeasure::kDuplicity, reference);
  ClaimQualityFunction f(&context, QualityMeasure::kDuplicity, reference);
  Rng rng(seed * 3 + 11);
  std::vector<int> cleaned = rng.SampleWithoutReplacement(30, 8);
  double exact = fast.EV(cleaned);
  Rng mc_rng(seed);
  double mc = MonteCarloEV(f, p, cleaned, 250, 250, mc_rng);
  // MC has sampling noise; demand agreement within a loose band.
  EXPECT_NEAR(mc, exact, 0.25 * (1.0 + exact)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 7));

TEST(FuzzTest, EvaluatorHandlesDegenerateDistributionShapes) {
  // Mixtures of point masses, two-atom coins and wide supports.
  Rng rng(407);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<UncertainObject> objects(9);
    for (int i = 0; i < 9; ++i) {
      int shape = rng.UniformInt(0, 2);
      if (shape == 0) {
        objects[i].dist =
            DiscreteDistribution::PointMass(rng.Uniform(1, 100));
      } else if (shape == 1) {
        double v = rng.Uniform(1, 100);
        objects[i].dist =
            DiscreteDistribution({v, v + rng.Uniform(0.1, 50)},
                                 {rng.Uniform(0.01, 0.99), 1.0});
      } else {
        std::vector<double> values, probs;
        for (int k = 0; k < 6; ++k) {
          values.push_back(rng.Uniform(1, 100));
          probs.push_back(rng.Uniform(0.01, 1.0));
        }
        objects[i].dist =
            DiscreteDistribution(std::move(values), std::move(probs));
      }
      objects[i].current_value = objects[i].dist.Mean();
      objects[i].cost = rng.Uniform(0.5, 5);
    }
    CleaningProblem p(std::move(objects));
    PerturbationSet context = SlidingWindowSumPerturbations(9, 3, 0, 1.5);
    double reference = context.original.Evaluate(p.CurrentValues());
    ClaimEvEvaluator fast(&p, &context, QualityMeasure::kFragility,
                          reference);
    double prior = fast.PriorVariance();
    EXPECT_GE(prior, 0.0);
    Selection sel = fast.GreedyMinVar(p.TotalCost());
    EXPECT_LE(fast.EV(sel.cleaned), prior + 1e-9);
  }
}

}  // namespace
}  // namespace factcheck
