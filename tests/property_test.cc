// Cross-cutting randomized property suites tying the algorithms to their
// guarantees on arbitrary instances:
//   * adaptive GreedyMinVar vs brute-force OPT on general (indicator) EV
//   * ClaimEvEvaluator cache consistency (memoized == recomputed)
//   * StrengthDirection invariances (duplicity variance is direction-
//     symmetric; fragility is not)
//   * greedy/DP/FPTAS budget feasibility under random cost structures

#include <gtest/gtest.h>

#include "claims/ev_fast.h"
#include "core/brute_force.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "core/modular.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

class GreedyVsOptTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsOptTest, AdaptiveGreedyRecoversMostOfOptOnIndicators) {
  uint64_t seed = GetParam();
  Rng rng(seed * 91 + 3);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 7, .min_support = 2, .max_support = 3});
  double threshold = rng.Uniform(100, 300);
  LambdaQueryFunction f({0, 1, 2, 3, 4, 5, 6},
                        [threshold](const std::vector<double>& x) {
                          double s = 0;
                          for (double v : x) s += v;
                          return s < threshold ? 1.0 : 0.0;
                        });
  double budget = p.TotalCost() * rng.Uniform(0.2, 0.6);
  SetObjective ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, p, t);
  };
  Selection greedy = GreedyMinVar(f, p, budget);
  Selection opt = BruteForceMinimize(p.Costs(), budget, ev);
  double removable = ev({}) - ev(opt.cleaned);
  if (removable < 1e-12) return;  // nothing to do in this world
  double achieved = ev({}) - ev(greedy.cleaned);
  // Greedy with the final check recovers at least half of OPT's reduction
  // on every instance we generate (empirically it is usually optimal).
  EXPECT_GE(achieved, 0.5 * removable - 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptTest, ::testing::Range(1, 21));

class CacheConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheConsistencyTest, MemoizedTermsMatchRecomputation) {
  uint64_t seed = GetParam();
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 10, .min_support = 2, .max_support = 3});
  PerturbationSet context = SlidingWindowSumPerturbations(10, 4, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kDuplicity,
                             reference);
  ClaimEvEvaluator fresh(&p, &context, QualityMeasure::kDuplicity,
                         reference);
  Rng rng(seed + 1000);
  // Hammer the cached evaluator with repeated and permuted queries; a
  // fresh evaluator must agree every time.
  for (int trial = 0; trial < 20; ++trial) {
    int k = rng.UniformInt(0, 6);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(10, k);
    double a = evaluator.EV(cleaned);
    double b = evaluator.EV(cleaned);  // cache hit path
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_NEAR(a, fresh.EV(cleaned), 1e-12 * (1 + a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheConsistencyTest,
                         ::testing::Range(1, 9));

TEST(DirectionTest, DuplicityVarianceIsDirectionSymmetric) {
  // 1[q >= Gamma] and 1[q <= Gamma] are complementary indicators, so their
  // variances and EV(T) coincide for supports that never hit Gamma
  // exactly (URx sums are integers; pick a half-integer Gamma).
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double gamma = 150.5;
  ClaimEvEvaluator higher(&p, &context, QualityMeasure::kDuplicity, gamma,
                          StrengthDirection::kHigherIsStronger);
  ClaimEvEvaluator lower(&p, &context, QualityMeasure::kDuplicity, gamma,
                         StrengthDirection::kLowerIsStronger);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    int k = rng.UniformInt(0, 8);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(12, k);
    EXPECT_NEAR(higher.EV(cleaned), lower.EV(cleaned), 1e-9);
  }
  // But the means are complementary, not equal.
  QualityMoments mh = higher.Moments();
  QualityMoments ml = lower.Moments();
  EXPECT_NEAR(mh.mean + ml.mean, context.size(), 1e-9);
}

TEST(DirectionTest, FragilityIsDirectionSensitive) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 9, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(9, 3, 0, 1.5);
  double gamma = 140.0;
  ClaimEvEvaluator higher(&p, &context, QualityMeasure::kFragility, gamma,
                          StrengthDirection::kHigherIsStronger);
  ClaimEvEvaluator lower(&p, &context, QualityMeasure::kFragility, gamma,
                         StrengthDirection::kLowerIsStronger);
  // Squared negative parts of q-gamma vs gamma-q weigh opposite tails;
  // with an asymmetric Gamma they must differ.
  EXPECT_NE(higher.Moments().mean, lower.Moments().mean);
}

class BudgetFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(BudgetFeasibilityTest, EverySolverRespectsTheBudget) {
  uint64_t seed = GetParam();
  Rng rng(seed * 7 + 11);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 15, .min_support = 2, .max_support = 4});
  std::vector<double> coeffs(15);
  for (auto& c : coeffs) c = rng.Uniform(-2, 2);
  LinearQueryFunction f = LinearQueryFunction::FromDense(coeffs);
  double budget = p.TotalCost() * rng.Uniform(0.05, 0.9);
  auto check = [&](const Selection& sel, const char* name) {
    double cost = 0;
    for (int i : sel.cleaned) cost += p.Costs()[i];
    EXPECT_LE(cost, budget + 1e-6) << name << " seed " << seed;
    EXPECT_NEAR(cost, sel.cost, 1e-9) << name;
    // cleaned is sorted unique and order is a permutation of it.
    EXPECT_TRUE(std::is_sorted(sel.cleaned.begin(), sel.cleaned.end()));
    std::vector<int> order_sorted = sel.order;
    std::sort(order_sorted.begin(), order_sorted.end());
    EXPECT_EQ(order_sorted, sel.cleaned) << name;
  };
  check(GreedyMinVarLinearIndependent(f, p.Variances(), p.Costs(), budget),
        "modular greedy");
  check(MinVarOptimumDp(f, p.Variances(), p.Costs(), budget), "dp");
  check(MinVarFptas(f, p.Variances(), p.Costs(), budget, 0.2), "fptas");
  ClaimQualityFunction* unused = nullptr;
  (void)unused;
  Rng rrng(seed);
  check(RandomSelect(p.Costs(), budget, rrng), "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetFeasibilityTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace factcheck
