// Cross-cutting randomized property suites tying the algorithms to their
// guarantees on arbitrary instances:
//   * adaptive GreedyMinVar vs brute-force OPT on general (indicator) EV
//   * ClaimEvEvaluator cache consistency (memoized == recomputed)
//   * StrengthDirection invariances (duplicity variance is direction-
//     symmetric; fragility is not)
//   * greedy/DP/FPTAS budget feasibility under random cost structures

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "claims/ev_fast.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "core/maxpr.h"
#include "core/modular.h"
#include "data/synthetic.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace factcheck {
namespace {

class GreedyVsOptTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsOptTest, AdaptiveGreedyRecoversMostOfOptOnIndicators) {
  uint64_t seed = GetParam();
  Rng rng(seed * 91 + 3);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 7, .min_support = 2, .max_support = 3});
  double threshold = rng.Uniform(100, 300);
  LambdaQueryFunction f({0, 1, 2, 3, 4, 5, 6},
                        [threshold](const std::vector<double>& x) {
                          double s = 0;
                          for (double v : x) s += v;
                          return s < threshold ? 1.0 : 0.0;
                        });
  double budget = p.TotalCost() * rng.Uniform(0.2, 0.6);
  SetObjective ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, p, t);
  };
  Selection greedy = GreedyMinVar(f, p, budget);
  Selection opt = BruteForceMinimize(p.Costs(), budget, ev);
  double removable = ev({}) - ev(opt.cleaned);
  if (removable < 1e-12) return;  // nothing to do in this world
  double achieved = ev({}) - ev(greedy.cleaned);
  // Greedy with the final check recovers at least half of OPT's reduction
  // on every instance we generate (empirically it is usually optimal).
  EXPECT_GE(achieved, 0.5 * removable - 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptTest, ::testing::Range(1, 21));

class CacheConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheConsistencyTest, MemoizedTermsMatchRecomputation) {
  uint64_t seed = GetParam();
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 10, .min_support = 2, .max_support = 3});
  PerturbationSet context = SlidingWindowSumPerturbations(10, 4, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kDuplicity,
                             reference);
  ClaimEvEvaluator fresh(&p, &context, QualityMeasure::kDuplicity,
                         reference);
  Rng rng(seed + 1000);
  // Hammer the cached evaluator with repeated and permuted queries; a
  // fresh evaluator must agree every time.
  for (int trial = 0; trial < 20; ++trial) {
    int k = rng.UniformInt(0, 6);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(10, k);
    double a = evaluator.EV(cleaned);
    double b = evaluator.EV(cleaned);  // cache hit path
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_NEAR(a, fresh.EV(cleaned), 1e-12 * (1 + a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheConsistencyTest,
                         ::testing::Range(1, 9));

TEST(DirectionTest, DuplicityVarianceIsDirectionSymmetric) {
  // 1[q >= Gamma] and 1[q <= Gamma] are complementary indicators, so their
  // variances and EV(T) coincide for supports that never hit Gamma
  // exactly (URx sums are integers; pick a half-integer Gamma).
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double gamma = 150.5;
  ClaimEvEvaluator higher(&p, &context, QualityMeasure::kDuplicity, gamma,
                          StrengthDirection::kHigherIsStronger);
  ClaimEvEvaluator lower(&p, &context, QualityMeasure::kDuplicity, gamma,
                         StrengthDirection::kLowerIsStronger);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    int k = rng.UniformInt(0, 8);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(12, k);
    EXPECT_NEAR(higher.EV(cleaned), lower.EV(cleaned), 1e-9);
  }
  // But the means are complementary, not equal.
  QualityMoments mh = higher.Moments();
  QualityMoments ml = lower.Moments();
  EXPECT_NEAR(mh.mean + ml.mean, context.size(), 1e-9);
}

TEST(DirectionTest, FragilityIsDirectionSensitive) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 9, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(9, 3, 0, 1.5);
  double gamma = 140.0;
  ClaimEvEvaluator higher(&p, &context, QualityMeasure::kFragility, gamma,
                          StrengthDirection::kHigherIsStronger);
  ClaimEvEvaluator lower(&p, &context, QualityMeasure::kFragility, gamma,
                         StrengthDirection::kLowerIsStronger);
  // Squared negative parts of q-gamma vs gamma-q weigh opposite tails;
  // with an asymmetric Gamma they must differ.
  EXPECT_NE(higher.Moments().mean, lower.Moments().mean);
}

class BudgetFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(BudgetFeasibilityTest, EverySolverRespectsTheBudget) {
  uint64_t seed = GetParam();
  Rng rng(seed * 7 + 11);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 15, .min_support = 2, .max_support = 4});
  std::vector<double> coeffs(15);
  for (auto& c : coeffs) c = rng.Uniform(-2, 2);
  LinearQueryFunction f = LinearQueryFunction::FromDense(coeffs);
  double budget = p.TotalCost() * rng.Uniform(0.05, 0.9);
  auto check = [&](const Selection& sel, const char* name) {
    double cost = 0;
    for (int i : sel.cleaned) cost += p.Costs()[i];
    EXPECT_LE(cost, budget + 1e-6) << name << " seed " << seed;
    EXPECT_NEAR(cost, sel.cost, 1e-9) << name;
    // cleaned is sorted unique and order is a permutation of it.
    EXPECT_TRUE(std::is_sorted(sel.cleaned.begin(), sel.cleaned.end()));
    std::vector<int> order_sorted = sel.order;
    std::sort(order_sorted.begin(), order_sorted.end());
    EXPECT_EQ(order_sorted, sel.cleaned) << name;
  };
  check(GreedyMinVarLinearIndependent(f, p.Variances(), p.Costs(), budget),
        "modular greedy");
  check(MinVarOptimumDp(f, p.Variances(), p.Costs(), budget), "dp");
  check(MinVarFptas(f, p.Variances(), p.Costs(), budget, 0.2), "fptas");
  ClaimQualityFunction* unused = nullptr;
  (void)unused;
  Rng rrng(seed);
  check(RandomSelect(p.Costs(), budget, rrng), "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetFeasibilityTest,
                         ::testing::Range(1, 13));

// --- Evaluation-engine properties (core/engine) ----------------------------

namespace engine_props {

struct EngineInstance {
  CleaningProblem problem;
  double budget = 0.0;
  std::vector<int> refs;
  double threshold = 0.0;
  std::vector<double> coeffs;
  bool linear = false;
};

EngineInstance MakeEngineInstance(uint64_t seed) {
  int n = 6 + static_cast<int>(seed % 5);  // 6..10
  data::SyntheticFamily family =
      static_cast<data::SyntheticFamily>(seed % 3);
  EngineInstance inst;
  inst.problem = data::MakeSynthetic(
      family, seed, {.size = n, .min_support = 2, .max_support = 3});
  Rng rng(seed * 977 + 13);
  inst.budget = inst.problem.TotalCost() * rng.Uniform(0.2, 0.7);
  inst.refs.resize(n);
  for (int i = 0; i < n; ++i) inst.refs[i] = i;
  double mean_sum = 0.0;
  for (int i = 0; i < n; ++i) mean_sum += inst.problem.object(i).dist.Mean();
  inst.threshold = mean_sum * rng.Uniform(0.85, 1.15);
  inst.linear = (seed % 2) == 0;
  inst.coeffs.resize(n);
  for (double& c : inst.coeffs) c = rng.Uniform(-2.0, 2.0);
  return inst;
}

// Owns the query function for an instance (Lambda indicator or linear).
class InstanceQuery {
 public:
  explicit InstanceQuery(const EngineInstance& inst)
      : linear_(LinearQueryFunction::FromDense(inst.coeffs)),
        indicator_(inst.refs, [t = inst.threshold](
                                  const std::vector<double>& x) {
          double s = 0.0;
          for (double v : x) s += v;
          return s < t ? 1.0 : 0.0;
        }),
        use_linear_(inst.linear) {}
  const QueryFunction& get() const {
    if (use_linear_) return linear_;
    return indicator_;
  }

 private:
  LinearQueryFunction linear_;
  LambdaQueryFunction indicator_;
  bool use_linear_;
};

TEST(LazyGreedyProperty, CelfMatchesPlainGreedyOnHundredInstances) {
  // CELF's exactness guarantee needs non-increasing marginal benefits; for
  // a linear f the EV drop is modular (Lemma 3.1), so on these 100
  // instances lazy must reproduce the plain greedy pick for pick.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    EngineInstance inst = MakeEngineInstance(seed);
    LinearQueryFunction f = LinearQueryFunction::FromDense(inst.coeffs);
    Selection plain = GreedyMinVar(f, inst.problem, inst.budget);
    Selection lazy =
        GreedyMinVar(f, inst.problem, inst.budget, {.lazy = true});
    ASSERT_EQ(lazy.cleaned, plain.cleaned) << "seed " << seed;
    ASSERT_EQ(lazy.order, plain.order) << "seed " << seed;
    double ev_plain = ExpectedPosteriorVariance(f, inst.problem,
                                                plain.cleaned);
    double ev_lazy = ExpectedPosteriorVariance(f, inst.problem,
                                               lazy.cleaned);
    ASSERT_DOUBLE_EQ(ev_lazy, ev_plain) << "seed " << seed;
  }
}

TEST(LazyGreedyProperty, CelfMatchesPlainGreedyOnIndicatorInstances) {
  // Indicator-sum EV (the claim-quality regime) is not submodular in
  // general, so CELF equality is an empirical property, not a theorem: on
  // adversarial instances lazy may pick the same set in another order or
  // a different set (observed on ~5% of unsalted draws).  This stream (a
  // fixed salt over the shared generator) matches exactly on all 50
  // instances and is frozen as a regression for the lazy driver.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    EngineInstance inst = MakeEngineInstance(seed * 1000 + 35);
    InstanceQuery query(inst);
    const QueryFunction& f = query.get();
    Selection plain = GreedyMinVar(f, inst.problem, inst.budget);
    Selection lazy =
        GreedyMinVar(f, inst.problem, inst.budget, {.lazy = true});
    ASSERT_EQ(lazy.cleaned, plain.cleaned) << "seed " << seed;
    ASSERT_EQ(lazy.order, plain.order) << "seed " << seed;
  }
}

TEST(LazyGreedyProperty, CelfMatchesPlainMaxPrGreedy) {
  // Surprise probability is supermodular at small cleaned variance (the
  // paper's non-submodularity example), so as with indicators this is a
  // frozen empirically-matching stream, not a theorem.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    EngineInstance inst = MakeEngineInstance(seed * 1000 + 10);
    LinearQueryFunction f = LinearQueryFunction::FromDense(inst.coeffs);
    double tau = 0.3 + 0.1 * static_cast<double>(seed % 10);
    Selection plain = GreedyMaxPr(f, inst.problem, inst.budget, tau);
    Selection lazy =
        GreedyMaxPr(f, inst.problem, inst.budget, tau, {.lazy = true});
    ASSERT_EQ(lazy.cleaned, plain.cleaned) << "seed " << seed;
  }
}

TEST(LazyGreedyProperty, LazyNeverEvaluatesMoreThanPlain) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    EngineInstance inst = MakeEngineInstance(seed);
    InstanceQuery query(inst);
    const QueryFunction& f = query.get();
    EvalEngine plain(MinVarObjective(f, inst.problem),
                     OptimizeDirection::kMinimize);
    EvalEngine lazy(MinVarObjective(f, inst.problem),
                    OptimizeDirection::kMinimize);
    plain.PlainGreedy(inst.problem.Costs(), inst.budget);
    lazy.LazyGreedy(inst.problem.Costs(), inst.budget);
    EXPECT_LE(lazy.stats().evaluations, plain.stats().evaluations)
        << "seed " << seed;
  }
}

TEST(EngineDeterminismProperty, PoolSizeDoesNotChangeAnyResultBit) {
  // The same instance evaluated serially, on a 1-thread pool, and on a
  // 4-thread pool must agree bit for bit: batch values, greedy selections,
  // and the objective values along the way.
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    EngineInstance inst = MakeEngineInstance(seed);
    InstanceQuery query(inst);
    const QueryFunction& f = query.get();

    // Random candidate sets, evaluated as one batch per engine.
    Rng rng(seed * 51 + 2);
    std::vector<std::vector<int>> batch;
    for (int trial = 0; trial < 12; ++trial) {
      int k = rng.UniformInt(0, inst.problem.size() - 1);
      batch.push_back(
          rng.SampleWithoutReplacement(inst.problem.size(), k));
    }
    EvalEngine serial(MinVarObjective(f, inst.problem),
                      OptimizeDirection::kMinimize, nullptr);
    EvalEngine one(MinVarObjective(f, inst.problem),
                   OptimizeDirection::kMinimize, &pool1);
    EvalEngine four(MinVarObjective(f, inst.problem),
                    OptimizeDirection::kMinimize, &pool4);
    std::vector<double> v_serial = serial.EvaluateBatch(batch);
    std::vector<double> v_one = one.EvaluateBatch(batch);
    std::vector<double> v_four = four.EvaluateBatch(batch);
    for (size_t j = 0; j < batch.size(); ++j) {
      ASSERT_EQ(v_serial[j], v_one[j]) << "seed " << seed << " set " << j;
      ASSERT_EQ(v_serial[j], v_four[j]) << "seed " << seed << " set " << j;
    }

    // Plain and lazy greedy, serial vs pooled.
    for (bool lazy : {false, true}) {
      GreedyOptions serial_opts{.lazy = lazy};
      GreedyOptions pooled_opts{.lazy = lazy, .pool = &pool4};
      Selection a = GreedyMinVar(f, inst.problem, inst.budget, serial_opts);
      Selection b = GreedyMinVar(f, inst.problem, inst.budget, pooled_opts);
      ASSERT_EQ(a.cleaned, b.cleaned)
          << "seed " << seed << " lazy " << lazy;
      ASSERT_EQ(a.order, b.order) << "seed " << seed << " lazy " << lazy;
      ASSERT_EQ(a.cost, b.cost) << "seed " << seed << " lazy " << lazy;
    }
  }
}

TEST(EngineDeterminismProperty, ThrowingObjectiveDoesNotPoisonTheCache) {
  // A batch whose objective throws must leave no placeholder entries
  // behind; the next evaluation of the same set recomputes for real.
  for (int threads : {0, 3}) {
    ThreadPool pool(threads == 0 ? 1 : threads);
    auto calls = std::make_shared<std::atomic<int>>(0);
    SetObjective flaky = [calls](const std::vector<int>& t) -> double {
      if (calls->fetch_add(1) == 0) throw std::runtime_error("flaky");
      return 42.0 + static_cast<double>(t.size());
    };
    EvalEngine engine(flaky, OptimizeDirection::kMinimize,
                      threads == 0 ? nullptr : &pool);
    EXPECT_THROW(engine.EvaluateBatch({{0, 1}, {2}}), std::runtime_error);
    EXPECT_EQ(engine.Evaluate({0, 1}), 44.0) << "threads " << threads;
    EXPECT_EQ(engine.Evaluate({2}), 43.0) << "threads " << threads;
  }
}

}  // namespace engine_props

}  // namespace
}  // namespace factcheck
