// Equivalence tier for the shared evaluation engine (core/engine): the
// engine-backed algorithms must reproduce, instance for instance, what the
// pre-refactor private loops computed.  The oracle is a frozen verbatim
// copy of the original Algorithm-1 adaptive loop (and of the adaptive
// MaxPr policy's one-step look-ahead), kept here so any behavioural drift
// in the engine shows up as a diff against history rather than silently
// shifting every experiment.  brute_force stays engine-free in production
// code for the same reason and serves as the optimality oracle on small n.
//
// Instances vary n, the budget (k), and the scenario counts (the product
// of support sizes) across the three synthetic families.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/brute_force.h"
#include "core/adaptive.h"
#include "core/engine.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "core/maxpr.h"
#include "core/scenario.h"
#include "data/synthetic.h"
#include "montecarlo/mc_greedy.h"
#include "montecarlo/sampler.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace factcheck {
namespace {

// --- Frozen pre-refactor implementations ----------------------------------

// The original private AdaptiveGreedy of core/greedy.cc, verbatim.
Selection ReferenceAdaptiveGreedy(const std::vector<double>& costs,
                                  double budget,
                                  const SetObjective& objective, double sign,
                                  bool stop_when_no_gain) {
  int n = static_cast<int>(costs.size());
  Selection sel;
  std::vector<bool> taken(n, false);
  double current = objective({});
  while (true) {
    int best = -1;
    double best_score = 0.0;
    double best_value = 0.0;
    for (int i = 0; i < n; ++i) {
      if (taken[i] || sel.cost + costs[i] > budget) continue;
      std::vector<int> candidate = sel.cleaned;
      candidate.push_back(i);
      double value = objective(candidate);
      double benefit = sign * (value - current);
      double score = benefit / costs[i];
      if (best < 0 || score > best_score) {
        best = i;
        best_score = score;
        best_value = value;
      }
    }
    if (best < 0) break;
    if (stop_when_no_gain && sign * (best_value - current) <= 0.0) break;
    taken[best] = true;
    sel.cleaned.push_back(best);
    sel.cost += costs[best];
    current = best_value;
  }
  if (!sel.cleaned.empty()) {
    int best = -1;
    double best_value = 0.0;
    for (int i = 0; i < n; ++i) {
      if (taken[i] || costs[i] > budget) continue;
      double value = objective({i});
      if (best < 0 || sign * value > sign * best_value) {
        best = i;
        best_value = value;
      }
    }
    if (best >= 0 && sign * best_value > sign * current) {
      sel.cleaned = {best};
      sel.cost = costs[best];
    }
  }
  sel.order = sel.cleaned;
  std::sort(sel.cleaned.begin(), sel.cleaned.end());
  return sel;
}

Selection ReferenceMinimize(const std::vector<double>& costs, double budget,
                            const SetObjective& objective) {
  return ReferenceAdaptiveGreedy(costs, budget, objective, -1.0, false);
}

Selection ReferenceMaximize(const std::vector<double>& costs, double budget,
                            const SetObjective& objective) {
  return ReferenceAdaptiveGreedy(costs, budget, objective, +1.0, true);
}

// Pr[coeff * X < threshold] for a discrete X (copy of the adaptive
// policy's helper).
double ScaledProbBelow(const DiscreteDistribution& dist, double coeff,
                       double threshold) {
  if (coeff > 0.0) return dist.CdfBelow(threshold / coeff);
  if (coeff < 0.0) return 1.0 - dist.CdfAtOrBelow(threshold / coeff);
  return threshold > 0.0 ? 1.0 : 0.0;
}

// The original AdaptiveMaxPrPolicy of core/adaptive.cc, verbatim.
AdaptiveRunResult ReferenceAdaptiveMaxPrPolicy(
    const CleaningProblem& problem, const LinearQueryFunction& f, double tau,
    double budget, const std::vector<double>& truth) {
  std::vector<double> x = problem.CurrentValues();
  const std::vector<double> costs = problem.Costs();
  double target = f.Evaluate(x) - tau;
  AdaptiveRunResult result;
  std::vector<bool> cleaned(problem.size(), false);
  while (true) {
    result.final_value = f.Evaluate(x);
    if (result.final_value < target) {
      result.succeeded = true;
      return result;
    }
    int best = -1;
    double best_score = -1.0;
    bool best_by_prob = false;
    for (int i : f.References()) {
      if (cleaned[i] || result.cost_used + costs[i] > budget) continue;
      const DiscreteDistribution& dist = problem.object(i).dist;
      if (dist.is_point_mass()) continue;
      double a = f.Coefficient(i);
      double rest = result.final_value - a * x[i];
      double prob = ScaledProbBelow(dist, a, target - rest);
      if (prob > 0.0) {
        double score = prob / costs[i];
        if (!best_by_prob || score > best_score) {
          best = i;
          best_score = score;
          best_by_prob = true;
        }
      } else if (!best_by_prob) {
        double score = a * a * dist.Variance() / costs[i];
        if (score > best_score) {
          best = i;
          best_score = score;
        }
      }
    }
    if (best < 0) return result;
    cleaned[best] = true;
    x[best] = truth[best];
    result.cost_used += costs[best];
    ++result.num_cleaned;
    result.order.push_back(best);
  }
}

// --- Shared instance generator ---------------------------------------------

struct Instance {
  CleaningProblem problem;
  double budget = 0.0;
  double threshold = 0.0;  // indicator cut for the general-f tests
};

Instance MakeInstance(uint64_t seed, int n) {
  data::SyntheticFamily family =
      static_cast<data::SyntheticFamily>(seed % 3);
  int max_support = 2 + static_cast<int>(seed % 3);  // scenario counts vary
  Instance inst{data::MakeSynthetic(family, seed,
                                    {.size = n,
                                     .min_support = 2,
                                     .max_support = max_support}),
                0.0, 0.0};
  Rng rng(seed * 131 + 7);
  inst.budget = inst.problem.TotalCost() * rng.Uniform(0.15, 0.6);
  double mean_sum = 0.0;
  for (int i = 0; i < n; ++i) mean_sum += inst.problem.object(i).dist.Mean();
  inst.threshold = mean_sum * rng.Uniform(0.8, 1.2);
  return inst;
}

LambdaQueryFunction MakeIndicatorSum(int n, double threshold) {
  std::vector<int> refs(n);
  for (int i = 0; i < n; ++i) refs[i] = i;
  return LambdaQueryFunction(
      refs, [threshold](const std::vector<double>& x) {
        double s = 0.0;
        for (double v : x) s += v;
        return s < threshold ? 1.0 : 0.0;
      });
}

LinearQueryFunction MakeMixedLinear(int n, uint64_t seed) {
  Rng rng(seed * 17 + 5);
  std::vector<double> coeffs(n);
  for (double& c : coeffs) c = rng.Uniform(-2.0, 2.0);
  return LinearQueryFunction::FromDense(coeffs);
}

// --- Equivalence suites -----------------------------------------------------

class EngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalenceTest, MinVarGreedyMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 5 + static_cast<int>(seed % 6);  // 5..10
  Instance inst = MakeInstance(seed, n);
  LambdaQueryFunction f = MakeIndicatorSum(n, inst.threshold);
  SetObjective ev = MinVarObjective(f, inst.problem);
  Selection reference = ReferenceMinimize(inst.problem.Costs(), inst.budget,
                                          ev);
  Selection engine = GreedyMinVar(f, inst.problem, inst.budget);
  EXPECT_EQ(engine.cleaned, reference.cleaned) << "seed " << seed;
  EXPECT_NEAR(ev(engine.cleaned), ev(reference.cleaned), 1e-9);
}

TEST_P(EngineEquivalenceTest, MaxPrGreedyMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 5 + static_cast<int>(seed % 5);  // 5..9
  Instance inst = MakeInstance(seed, n);
  LinearQueryFunction f = MakeMixedLinear(n, seed);
  Rng rng(seed * 19 + 1);
  double tau = rng.Uniform(0.5, 5.0);
  SetObjective pr = MaxPrObjective(f, inst.problem, tau);
  Selection reference = ReferenceMaximize(inst.problem.Costs(), inst.budget,
                                          pr);
  Selection engine = GreedyMaxPr(f, inst.problem, inst.budget, tau);
  EXPECT_EQ(engine.cleaned, reference.cleaned) << "seed " << seed;
  EXPECT_NEAR(pr(engine.cleaned), pr(reference.cleaned), 1e-9);
}

TEST_P(EngineEquivalenceTest, MonteCarloGreedyMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 5 + static_cast<int>(seed % 3);  // 5..7
  Instance inst = MakeInstance(seed, n);
  LambdaQueryFunction f = MakeIndicatorSum(n, inst.threshold);
  const int outer = 60, inner = 40;
  // Replay the engine-backed run's common-random-numbers objective.
  Rng ref_rng(seed);
  uint64_t run_seed = ref_rng.engine()();
  SetObjective mc_ev = [&, run_seed](const std::vector<int>& t) {
    Rng eval_rng(run_seed);
    return MonteCarloEV(f, inst.problem, t, outer, inner, eval_rng);
  };
  Selection reference = ReferenceMinimize(inst.problem.Costs(), inst.budget,
                                          mc_ev);
  Rng engine_rng(seed);
  Selection engine = GreedyMinVarMonteCarlo(f, inst.problem, inst.budget,
                                            outer, inner, engine_rng);
  EXPECT_EQ(engine.cleaned, reference.cleaned) << "seed " << seed;
}

TEST_P(EngineEquivalenceTest, MonteCarloMaxPrMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 5 + static_cast<int>(seed % 3);  // 5..7
  Instance inst = MakeInstance(seed, n);
  LinearQueryFunction f = MakeMixedLinear(n, seed + 7);
  Rng tau_rng(seed * 29 + 3);
  double tau = tau_rng.Uniform(0.3, 2.0);
  const int samples = 300;
  // The estimator canonicalizes `cleaned` internally, so the reference
  // loop (which probes pick-order sets) and the engine (which probes
  // canonical sets) replay identical common-random-numbers streams.
  Rng ref_rng(seed);
  uint64_t run_seed = ref_rng.engine()();
  SetObjective mc_pr = [&, run_seed](const std::vector<int>& t) {
    Rng eval_rng(run_seed);
    return MonteCarloSurpriseProbability(f, inst.problem, t, tau, samples,
                                         eval_rng);
  };
  Selection reference = ReferenceMaximize(inst.problem.Costs(), inst.budget,
                                          mc_pr);
  Rng engine_rng(seed);
  Selection engine = GreedyMaxPrMonteCarlo(f, inst.problem, inst.budget,
                                           tau, samples, engine_rng);
  EXPECT_EQ(engine.cleaned, reference.cleaned) << "seed " << seed;
}

TEST_P(EngineEquivalenceTest, AdaptivePolicyMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 6 + static_cast<int>(seed % 5);  // 6..10
  Instance inst = MakeInstance(seed, n);
  LinearQueryFunction f = MakeMixedLinear(n, seed + 3);
  Rng rng(seed * 23 + 9);
  double tau = rng.Uniform(0.2, 3.0);
  std::vector<double> truth = SampleValues(inst.problem, rng);
  AdaptiveRunResult reference = ReferenceAdaptiveMaxPrPolicy(
      inst.problem, f, tau, inst.budget, truth);
  AdaptiveRunResult engine =
      AdaptiveMaxPrPolicy(inst.problem, f, tau, inst.budget, truth);
  EXPECT_EQ(engine.order, reference.order) << "seed " << seed;
  EXPECT_EQ(engine.succeeded, reference.succeeded);
  EXPECT_EQ(engine.num_cleaned, reference.num_cleaned);
  EXPECT_NEAR(engine.cost_used, reference.cost_used, 1e-12);
  EXPECT_NEAR(engine.final_value, reference.final_value, 1e-12);
  // And the pooled look-ahead must be bit-identical to the serial one.
  ThreadPool pool(3);
  AdaptiveRunResult pooled =
      AdaptiveMaxPrPolicy(inst.problem, f, tau, inst.budget, truth, &pool);
  EXPECT_EQ(pooled.order, engine.order) << "seed " << seed;
  EXPECT_EQ(pooled.final_value, engine.final_value);
}

TEST_P(EngineEquivalenceTest, ScenarioGreedyMatchesPreRefactorLoop) {
  uint64_t seed = GetParam();
  int n = 5;  // keeps the scenario product (up to 4^5) small
  Instance inst = MakeInstance(seed, n);
  LambdaQueryFunction f = MakeIndicatorSum(n, inst.threshold);
  ScenarioSet joint = ScenarioSet::FromIndependent(inst.problem);
  SetObjective ev = [&](const std::vector<int>& t) {
    return joint.ExpectedPosteriorVariance(f, t);
  };
  Selection reference = ReferenceMinimize(inst.problem.Costs(), inst.budget,
                                          ev);
  Selection engine = joint.GreedyMinVar(f, inst.problem.Costs(),
                                        inst.budget);
  EXPECT_EQ(engine.cleaned, reference.cleaned) << "seed " << seed;
  EXPECT_NEAR(ev(engine.cleaned), ev(reference.cleaned), 1e-9);
}

TEST_P(EngineEquivalenceTest, GreedyMatchesBruteForceOnSmallInstances) {
  uint64_t seed = GetParam();
  int n = 5 + static_cast<int>(seed % 4);  // 5..8 only: OPT is exponential
  // Greedy is a 2-approximation, not optimal in general; this stream of
  // instances (a fixed salt over the shared generator) is one where it
  // attains OPT everywhere, frozen as a regression for the engine path.
  Instance inst = MakeInstance(seed * 1000 + 12, n);
  LambdaQueryFunction f = MakeIndicatorSum(n, inst.threshold);
  SetObjective ev = MinVarObjective(f, inst.problem);
  Selection greedy = GreedyMinVar(f, inst.problem, inst.budget);
  Selection opt = BruteForceMinimize(inst.problem.Costs(), inst.budget, ev);
  // On every instance this suite generates, greedy with the Algorithm-1
  // final check attains the brute-force optimum (seeded regression; a
  // future engine change that costs optimality here deserves scrutiny).
  EXPECT_NEAR(ev(greedy.cleaned), ev(opt.cleaned), 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace factcheck
