// Pooling -> convolution -> EV consistency: re-quantizing supports with
// PoolSupport must preserve means exactly (pooled bins are conditional
// means) and can only shrink variances (law of total variance), and those
// invariants must survive the convolution layer and the exact EV engines
// that adaptive partial cleaning feeds through
// CleaningProblem::ReplaceDistribution.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ev.h"
#include "core/problem.h"
#include "core/query_function.h"
#include "data/synthetic.h"
#include "dist/convolution.h"
#include "dist/normal.h"
#include "dist/pooling.h"
#include "util/random.h"

namespace factcheck {
namespace {

DiscreteDistribution WideDistribution(Rng& rng, int support) {
  std::vector<double> values(support), probs(support);
  for (int k = 0; k < support; ++k) {
    values[k] = rng.Uniform(-50, 150);
    probs[k] = rng.Uniform(0.01, 1.0);
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

TEST(PoolSupportTest, IdentityWhenSupportAlreadySmall) {
  DiscreteDistribution d({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  EXPECT_TRUE(PoolSupport(d, 3) == d);
  EXPECT_TRUE(PoolSupport(d, 10) == d);
}

TEST(PoolSupportTest, HitsRequestedSupportSize) {
  DiscreteDistribution d = QuantizeNormal(0.0, 1.0, 32);
  for (int k : {1, 2, 5, 31}) {
    EXPECT_EQ(PoolSupport(d, k).support_size(), k) << k;
  }
}

TEST(PoolSupportTest, PreservesMeanExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    DiscreteDistribution d = WideDistribution(rng, rng.UniformInt(4, 40));
    for (int k : {1, 2, 3, 6}) {
      DiscreteDistribution pooled = PoolSupport(d, k);
      EXPECT_LE(pooled.support_size(), k);
      EXPECT_NEAR(pooled.Mean(), d.Mean(), 1e-12 * (1.0 + std::abs(d.Mean())))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(PoolSupportTest, NeverIncreasesVarianceAndDriftVanishes) {
  // Law of total variance: pooled variance = Var - E[within-bin Var] <= Var;
  // as the bin count grows the deficit must fade.
  DiscreteDistribution d = QuantizeNormal(100.0, 15.0, 64);
  double full = d.Variance();
  double prev = -1.0;
  for (int k : {2, 4, 8, 16, 32}) {
    double pooled = PoolSupport(d, k).Variance();
    EXPECT_LE(pooled, full + 1e-9) << k;
    EXPECT_GE(pooled, prev - 1e-9) << k;  // finer pooling keeps more variance
    prev = pooled;
  }
  EXPECT_NEAR(PoolSupport(d, 32).Variance(), full, 0.05 * full);
}

TEST(PoolSupportTest, TinyTailMassIsNeverDropped) {
  // A far-out atom with mass below the bin-quota epsilon must fold into
  // the last bin, not vanish: dropping it would shift the mean by
  // ~1e-4 here and break the exact-mean contract.
  DiscreteDistribution d({0.0, 1.0, 2.0, 3.0, 1e9},
                         {0.25, 0.25, 0.25, 0.25 - 1e-13, 1e-13});
  for (int k : {1, 2, 4}) {
    DiscreteDistribution pooled = PoolSupport(d, k);
    EXPECT_NEAR(pooled.Mean(), d.Mean(), 1e-9) << k;
    double total = 0.0;
    for (double p : pooled.probs()) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12) << k;
  }
}

TEST(PoolSupportTest, PointMassPoolingIsTotalCollapse) {
  DiscreteDistribution d({1.0, 3.0, 5.0}, {0.25, 0.5, 0.25});
  DiscreteDistribution pooled = PoolSupport(d, 1);
  EXPECT_TRUE(pooled.is_point_mass());
  EXPECT_DOUBLE_EQ(pooled.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(pooled.Variance(), 0.0);
}

TEST(RoundTripTest, ConvolutionOfPooledTermsKeepsMeanBoundsVariance) {
  Rng rng(23);
  std::vector<DiscreteDistribution> originals, pooled;
  std::vector<double> coeffs = {1.0, -2.0, 0.5, 1.0, 3.0};
  for (int i = 0; i < 5; ++i) {
    originals.push_back(WideDistribution(rng, 12));
    pooled.push_back(PoolSupport(originals.back(), 4));
  }
  std::vector<WeightedTerm> t_orig, t_pool;
  for (int i = 0; i < 5; ++i) {
    t_orig.push_back({&originals[i], coeffs[i]});
    t_pool.push_back({&pooled[i], coeffs[i]});
  }
  SumDistribution s_orig = ConvolveSum(t_orig);
  SumDistribution s_pool = ConvolveSum(t_pool);
  // Means are additive and each term's mean survived pooling exactly.
  EXPECT_NEAR(SumMean(s_pool), SumMean(s_orig),
              1e-10 * (1.0 + std::abs(SumMean(s_orig))));
  // Variances are additive in c_i^2 Var[X_i]; each term only shrank.
  EXPECT_LE(SumVariance(s_pool), SumVariance(s_orig) + 1e-9);
  // The drift is bounded by the summed per-term losses.
  double loss = 0.0;
  for (int i = 0; i < 5; ++i) {
    loss += coeffs[i] * coeffs[i] *
            (originals[i].Variance() - pooled[i].Variance());
  }
  EXPECT_NEAR(SumVariance(s_orig) - SumVariance(s_pool), loss,
              1e-8 * (1.0 + loss));
}

TEST(RoundTripTest, SumToDiscreteRoundTripsThroughPooling) {
  DiscreteDistribution die({1, 2, 3, 4, 5, 6}, std::vector<double>(6, 1.0 / 6));
  SumDistribution two_dice = ConvolveSum({{&die, 1.0}, {&die, 1.0}});
  DiscreteDistribution back = SumToDiscrete(two_dice);
  DiscreteDistribution coarse = PoolSupport(back, 5);
  EXPECT_NEAR(coarse.Mean(), 7.0, 1e-12);
  EXPECT_LE(coarse.Variance(), back.Variance() + 1e-12);
}

TEST(RoundTripTest, ReplaceDistributionWithPooledKeepsEvInvariants) {
  // The adaptive partial-cleaning path: swap every distribution for its
  // pooled coarsening via ReplaceDistribution, then compare the exact EV
  // engine across the two problems on a linear query.
  CleaningProblem original = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 29,
      {.size = 6, .min_support = 5, .max_support = 8});
  CleaningProblem coarse = original;
  for (int i = 0; i < coarse.size(); ++i) {
    coarse.ReplaceDistribution(i, PoolSupport(original.object(i).dist, 3));
  }
  LinearQueryFunction f =
      LinearQueryFunction::FromDense({1.0, -1.0, 2.0, 0.5, -0.5, 1.0});
  // f is linear, so E[f] depends only on the (exactly preserved) means.
  EXPECT_NEAR(ExpectedValue(f, coarse), ExpectedValue(f, original), 1e-9);
  // Prior variance is sum a_i^2 Var[X_i]: pooling can only remove variance.
  EXPECT_LE(PriorVariance(f, coarse), PriorVariance(f, original) + 1e-9);
  // And the same ordering holds for EV(T) on every cleaned set tried.
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<int> cleaned =
        rng.SampleWithoutReplacement(6, rng.UniformInt(0, 6));
    EXPECT_LE(ExpectedPosteriorVariance(f, coarse, cleaned),
              ExpectedPosteriorVariance(f, original, cleaned) + 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace factcheck
