// Registry-equivalence suite for the Planner facade: every registered
// algorithm must return the identical Selection as its direct
// free-function call on small problems, including with a thread pool and
// the lazy driver; plus the golden list-algos text, PlanResult JSON, the
// trajectory contract, and the registry error paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>

#include "cli/cli.h"
#include "core/brute_force.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "core/maxpr.h"
#include "core/modular.h"
#include "core/planner.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "montecarlo/mc_greedy.h"
#include "submodular/issc.h"
#include "util/thread_pool.h"

namespace factcheck {
namespace {

constexpr std::uint64_t kSeed = 123;
constexpr int kMcSamples = 40;
constexpr int kMcInner = 16;
constexpr double kTau = 0.5;

struct Fixture {
  CleaningProblem problem;
  LinearQueryFunction query;
  double budget;

  static Fixture Make(int n = 8) {
    CleaningProblem problem = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, 77,
        {.size = n, .min_support = 2, .max_support = 3});
    std::vector<int> refs(n);
    std::vector<double> coeffs(n);
    for (int i = 0; i < n; ++i) {
      refs[i] = i;
      coeffs[i] = (i % 2 == 0 ? 1.0 : -1.0) * (1.0 + 0.1 * i);
    }
    double budget = 0.4 * problem.TotalCost();
    return {std::move(problem), LinearQueryFunction(refs, coeffs), budget};
  }

  PlanRequest Request(ObjectiveKind kind, int threads = 1,
                      bool lazy = false) const {
    PlanRequest request;
    request.problem = &problem;
    request.query = &query;
    request.linear_query = &query;
    request.objective = kind;
    request.budget = budget;
    request.tau = kTau;
    request.engine.threads = threads;
    request.engine.lazy = lazy;
    request.engine.mc_samples = kMcSamples;
    request.engine.mc_inner = kMcInner;
    request.engine.seed = kSeed;
    return request;
  }
};

void ExpectSameSelection(const PlanResult& facade, const Selection& direct) {
  EXPECT_EQ(facade.selection.cleaned, direct.cleaned);
  EXPECT_EQ(facade.selection.order, direct.order);
  EXPECT_DOUBLE_EQ(facade.selection.cost, direct.cost);
}

// Runs `direct` against the facade for all pool/lazy combinations the
// engine-backed algorithms support.
void CheckEngineAlgorithm(
    const Fixture& fx, const std::string& name, ObjectiveKind kind,
    const std::function<Selection(const GreedyOptions&)>& direct) {
  for (int threads : {1, 4}) {
    for (bool lazy : {false, true}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads) +
                   " lazy=" + std::to_string(lazy));
      PlanResult facade =
          Planner().Plan(fx.Request(kind, threads, lazy), name);
      std::optional<ThreadPool> pool;
      if (threads > 1) pool.emplace(threads);
      GreedyOptions options;
      options.lazy = lazy;
      options.pool = pool.has_value() ? &*pool : nullptr;
      ExpectSameSelection(facade, direct(options));
    }
  }
}

TEST(RegistryEquivalence, GreedyMinVar) {
  Fixture fx = Fixture::Make();
  CheckEngineAlgorithm(fx, "greedy_minvar", ObjectiveKind::kMinVar,
                       [&](const GreedyOptions& options) {
                         return GreedyMinVar(fx.query, fx.problem, fx.budget,
                                             options);
                       });
}

TEST(RegistryEquivalence, GreedyMaxPr) {
  Fixture fx = Fixture::Make();
  CheckEngineAlgorithm(fx, "greedy_maxpr", ObjectiveKind::kMaxPr,
                       [&](const GreedyOptions& options) {
                         return GreedyMaxPr(fx.query, fx.problem, fx.budget,
                                            kTau, options);
                       });
}

TEST(RegistryEquivalence, GreedyMaxPrNormal) {
  Fixture fx = Fixture::Make();
  std::vector<double> stddevs = fx.problem.Variances();
  for (double& v : stddevs) v = std::sqrt(v);
  CheckEngineAlgorithm(
      fx, "greedy_maxpr_normal", ObjectiveKind::kMaxPr,
      [&](const GreedyOptions& options) {
        return GreedyMaxPrNormal(fx.query, fx.problem.Means(), stddevs,
                                 fx.problem.CurrentValues(),
                                 fx.problem.Costs(), fx.budget, kTau,
                                 options);
      });
}

TEST(RegistryEquivalence, McGreedyMinVar) {
  Fixture fx = Fixture::Make();
  CheckEngineAlgorithm(fx, "mc_greedy_minvar", ObjectiveKind::kMinVar,
                       [&](const GreedyOptions& options) {
                         Rng rng(kSeed);
                         return GreedyMinVarMonteCarlo(
                             fx.query, fx.problem, fx.budget, kMcSamples,
                             kMcInner, rng, options);
                       });
}

TEST(RegistryEquivalence, McGreedyMaxPr) {
  Fixture fx = Fixture::Make();
  CheckEngineAlgorithm(fx, "mc_greedy_maxpr", ObjectiveKind::kMaxPr,
                       [&](const GreedyOptions& options) {
                         Rng rng(kSeed);
                         return GreedyMaxPrMonteCarlo(fx.query, fx.problem,
                                                      fx.budget, kTau,
                                                      kMcSamples, rng,
                                                      options);
                       });
}

TEST(RegistryEquivalence, Random) {
  Fixture fx = Fixture::Make();
  PlanResult facade =
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "random");
  Rng rng(kSeed);
  ExpectSameSelection(facade,
                      RandomSelect(fx.problem.Costs(), fx.budget, rng));
}

TEST(RegistryEquivalence, GreedyNaiveBothFlavors) {
  Fixture fx = Fixture::Make();
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "greedy_naive"),
      GreedyNaive(fx.query, fx.problem, fx.budget));
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar),
                     "greedy_naive_cost_blind"),
      GreedyNaiveCostBlind(fx.query, fx.problem, fx.budget));
}

TEST(RegistryEquivalence, GreedyMinVarLinear) {
  Fixture fx = Fixture::Make();
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar),
                     "greedy_minvar_linear"),
      GreedyMinVarLinearIndependent(fx.query, fx.problem.Variances(),
                                    fx.problem.Costs(), fx.budget));
}

TEST(RegistryEquivalence, BestMinVar) {
  Fixture fx = Fixture::Make();
  PlanResult facade =
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "best_minvar");
  ExpectSameSelection(facade, BestMinVar(MinVarObjective(fx.query, fx.problem),
                                         fx.problem.Costs(), fx.budget));
}

TEST(RegistryEquivalence, KnapsackFamily) {
  Fixture fx = Fixture::Make();
  std::vector<double> stddevs = fx.problem.Variances();
  for (double& v : stddevs) v = std::sqrt(v);
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar),
                     "knapsack_dp_minvar"),
      MinVarOptimumDp(fx.query, fx.problem.Variances(), fx.problem.Costs(),
                      fx.budget));
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar),
                     "knapsack_fptas_minvar"),
      MinVarFptas(fx.query, fx.problem.Variances(), fx.problem.Costs(),
                  fx.budget, /*eps=*/0.1));
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMaxPr), "knapsack_dp_maxpr"),
      MaxPrOptimumDp(fx.query, stddevs, fx.problem.Costs(), fx.budget));
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMaxPr),
                     "knapsack_fptas_maxpr"),
      MaxPrFptas(fx.query, stddevs, fx.problem.Costs(), fx.budget,
                 /*eps=*/0.1));
}

TEST(RegistryEquivalence, BruteForceBothDirections) {
  Fixture fx = Fixture::Make(7);
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "brute_force"),
      BruteForceMinimize(fx.problem.Costs(), fx.budget,
                         MinVarObjective(fx.query, fx.problem)));
  ExpectSameSelection(
      Planner().Plan(fx.Request(ObjectiveKind::kMaxPr), "brute_force"),
      BruteForceMaximize(fx.problem.Costs(), fx.budget,
                         MaxPrObjective(fx.query, fx.problem, kTau)));
}

// Every registered algorithm runs end to end under its native objective
// kind and returns a feasible selection with labels attached — the CLI
// `--algo all` guarantee.
TEST(RegistryEquivalence, EveryAlgorithmRunsOnTheFixture) {
  Fixture fx = Fixture::Make();
  Planner planner;
  int ran = 0;
  for (const auto* algo : planner.registry().Sorted()) {
    SCOPED_TRACE(algo->name);
    PlanRequest request = fx.Request(
        algo->objective.value_or(ObjectiveKind::kMinVar));
    std::string error;
    std::optional<PlanResult> result =
        planner.TryPlan(request, algo->name, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_LE(result->selection.cost, fx.budget + 1e-9);
    EXPECT_EQ(result->labels.size(), result->selection.cleaned.size());
    // The trajectory covers every pick (falling back to the cleaned set
    // for the set-producing algorithms) and ends at the objective of the
    // final selection.
    ASSERT_TRUE(result->has_objective_value);
    EXPECT_EQ(result->trajectory.size(),
              result->selection.cleaned.size() + 1);
    SetObjective objective =
        request.objective == ObjectiveKind::kMinVar
            ? MinVarObjective(fx.query, fx.problem)
            : MaxPrObjective(fx.query, fx.problem, kTau);
    EXPECT_DOUBLE_EQ(result->objective_value,
                     objective(result->selection.cleaned));
    ++ran;
  }
  EXPECT_EQ(ran, planner.registry().size());
}

TEST(PlannerTest, TrajectoryIsPrefixObjectives) {
  Fixture fx = Fixture::Make();
  PlanResult result =
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "greedy_minvar");
  SetObjective objective = MinVarObjective(fx.query, fx.problem);
  ASSERT_TRUE(result.has_objective_value);
  ASSERT_EQ(result.trajectory.size(), result.selection.order.size() + 1);
  EXPECT_DOUBLE_EQ(result.trajectory.front(), objective({}));
  std::vector<int> prefix;
  for (size_t k = 0; k < result.selection.order.size(); ++k) {
    prefix.push_back(result.selection.order[k]);
    std::vector<int> canonical = prefix;
    std::sort(canonical.begin(), canonical.end());
    EXPECT_DOUBLE_EQ(result.trajectory[k + 1], objective(canonical));
  }
  EXPECT_DOUBLE_EQ(result.objective_value, result.trajectory.back());
  // The engine-backed run reports its evaluation counters.
  EXPECT_GT(result.stats.evaluations, 0);
}

TEST(PlannerTest, CustomObjectiveDrivesTheEngineAlgorithms) {
  Fixture fx = Fixture::Make();
  // A transparent modular objective: the negated sum of per-object
  // weights, so minimization wants high-weight objects first.
  std::vector<double> weights(fx.problem.size());
  for (int i = 0; i < fx.problem.size(); ++i) weights[i] = 1.0 + i;
  PlanRequest request = fx.Request(ObjectiveKind::kMinVar);
  request.custom_objective = [&weights](const std::vector<int>& cleaned) {
    double acc = 0.0;
    for (int i : cleaned) acc -= weights[i];
    return acc;
  };
  PlanResult facade = Planner().Plan(request, "greedy_minvar");
  Selection direct = AdaptiveGreedyMinimize(
      fx.problem.Costs(), fx.budget, request.custom_objective);
  ExpectSameSelection(facade, direct);
  // The trajectory trusts the custom objective as well.
  ASSERT_TRUE(facade.has_objective_value);
  EXPECT_DOUBLE_EQ(facade.objective_value,
                   request.custom_objective(facade.selection.cleaned));
}

TEST(PlannerTest, JsonSerializationContainsTheContract) {
  Fixture fx = Fixture::Make();
  PlanResult result =
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "greedy_minvar");
  std::string json = result.ToJson();
  EXPECT_NE(json.find("\"algorithm\":\"greedy_minvar\""), std::string::npos);
  EXPECT_NE(json.find("\"objective\":\"minvar\""), std::string::npos);
  EXPECT_NE(json.find("\"selection\":{\"cleaned\":["), std::string::npos);
  EXPECT_NE(json.find("\"order\":["), std::string::npos);
  EXPECT_NE(json.find("\"labels\":["), std::string::npos);
  EXPECT_NE(json.find("\"objective_value\":"), std::string::npos);
  EXPECT_NE(json.find("\"trajectory\":["), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{\"evaluations\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  // Balanced structure (no raw braces appear in this fixture's labels).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(PlannerTest, TryPlanReportsErrors) {
  Fixture fx = Fixture::Make();
  Planner planner;
  std::string error;
  EXPECT_FALSE(planner
                   .TryPlan(fx.Request(ObjectiveKind::kMinVar), "no_such_algo",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("unknown algorithm"), std::string::npos);

  // Objective-kind mismatch.
  EXPECT_FALSE(planner
                   .TryPlan(fx.Request(ObjectiveKind::kMaxPr), "greedy_minvar",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("optimizes minvar"), std::string::npos);

  // Missing linear query.
  PlanRequest no_linear = fx.Request(ObjectiveKind::kMaxPr);
  no_linear.linear_query = nullptr;
  EXPECT_FALSE(
      planner.TryPlan(no_linear, "greedy_maxpr_normal", &error).has_value());
  EXPECT_NE(error.find("affine form"), std::string::npos);

  // Instance-size cap.
  Fixture big = Fixture::Make(30);
  EXPECT_FALSE(planner
                   .TryPlan(big.Request(ObjectiveKind::kMinVar), "brute_force",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("at most 25"), std::string::npos);
}

TEST(PlannerTest, RegistrarSelfRegistersIntoALocalRegistry) {
  AlgorithmRegistry local;
  internal::RegisterBuiltinAlgorithms(local);
  const int builtins = local.size();
  AlgorithmRegistrar registrar(
      {.name = "fixed_pick",
       .summary = "test-only: always cleans object 0",
       .objective = std::nullopt,
       .run =
           [](const PlanContext& ctx) {
             Selection sel;
             sel.cleaned = {0};
             sel.cost = ctx.costs[0];
             FinishSelection(sel);
             return sel;
           }},
      &local);
  EXPECT_EQ(local.size(), builtins + 1);
  Fixture fx = Fixture::Make();
  PlanResult result = Planner(&local).Plan(fx.Request(ObjectiveKind::kMinVar),
                                           "fixed_pick");
  EXPECT_EQ(result.selection.cleaned, std::vector<int>({0}));
  // The global registry is untouched.
  EXPECT_EQ(AlgorithmRegistry::Global().Find("fixed_pick"), nullptr);
}

TEST(PlannerTest, WideQuerySkipsTheExactTrajectory) {
  // 30 objects, all referenced: the scenario count blows past the cap, so
  // the trajectory must be skipped rather than enumerated.
  Fixture fx = Fixture::Make(30);
  PlanResult result =
      Planner().Plan(fx.Request(ObjectiveKind::kMinVar), "greedy_naive");
  EXPECT_TRUE(result.trajectory.empty());
  EXPECT_FALSE(result.has_objective_value);
  std::string json = result.ToJson();
  EXPECT_NE(json.find("\"objective_value\":null"), std::string::npos);
}

// The golden list-algos output: freezes the catalogue names, their
// requirement columns, and the one-line summaries the CLI prints.
TEST(CliTest, GoldenListAlgos) {
  const std::string kGolden =
      "algorithm                objective needs    summary\n"
      "best_minvar              minvar    -        ISSC submodular-cover "
      "approximation (\"Best\", Thm 3.7)\n"
      "brute_force              either    -        exhaustive subset search "
      "(\"OPT\"), n <= 25\n"
      "greedy_maxpr             maxpr     -        adaptive greedy on the "
      "exact surprise probability\n"
      "greedy_maxpr_normal      maxpr     linear   MaxPr greedy in the "
      "normal closed form (Lemma 3.3)\n"
      "greedy_minvar            minvar    -        adaptive greedy on the "
      "exact (or custom) EV objective\n"
      "greedy_minvar_linear     minvar    linear   modular MinVar greedy "
      "for affine queries (Lemma 3.1)\n"
      "greedy_naive             either    -        static greedy on "
      "Var[X_i]/cost of referenced objects\n"
      "greedy_naive_cost_blind  either    -        static greedy on "
      "Var[X_i], ignoring costs\n"
      "knapsack_dp_maxpr        maxpr     linear   exact modular MaxPr via "
      "knapsack DP (Lemma 3.3)\n"
      "knapsack_dp_minvar       minvar    linear   exact modular MinVar via "
      "knapsack DP (Lemma 3.2)\n"
      "knapsack_fptas_maxpr     maxpr     linear   modular MaxPr FPTAS "
      "(Lemma 3.3, value scaling)\n"
      "knapsack_fptas_minvar    minvar    linear   modular MinVar FPTAS "
      "(Lemma 3.2, value scaling)\n"
      "mc_greedy_maxpr          maxpr     -        adaptive greedy on the "
      "Monte Carlo surprise estimate\n"
      "mc_greedy_minvar         minvar    -        adaptive greedy on the "
      "Monte Carlo EV estimate\n"
      "random                   either    -        uniform random baseline "
      "(seeded)\n";
  EXPECT_EQ(cli::ListAlgosText(), kGolden);
}

}  // namespace
}  // namespace factcheck
