// Crash safety of the durable-update path (serve/changelog.h +
// PlanningService persistence): the torn-write crash matrix over every
// byte offset of a changelog, the fsync policy's exact syscall counts,
// acked-update durability across a restart, and — in fault-injection
// builds — torn/failed appends reconciled through the snapshot fallback
// so a restarted service is bit-identical to the never-restarted one.
//
// Carries the `stress` label so the sanitizer legs replay the corruption
// cases too.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/delta.h"
#include "core/problem.h"
#include "data/problem_io.h"
#include "serve/changelog.h"
#include "serve/json_value.h"
#include "serve/service.h"
#include "util/fault.h"
#include "util/json.h"

namespace factcheck {
namespace serve {
namespace {

CleaningProblem MakeProblem(int n = 5) {
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.5 * (i % 2);
    double mid = 10.0 + i;
    object.dist =
        DiscreteDistribution({mid - 1.0, mid, mid + 1.5}, {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

std::string DeltaJson(const ProblemDelta& delta) {
  JsonWriter writer;
  WriteDeltaJson(delta, writer);
  return writer.str();
}

std::string UpdateLine(const std::string& name,
                       const std::string& deltas_array) {
  return "{\"op\":\"update\",\"problem\":\"" + name +
         "\",\"deltas\":" + deltas_array + "}";
}

std::string RegisterLine(const std::string& name, const std::string& csv) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("op")
      .String("register")
      .Key("problem")
      .String(name)
      .Key("csv")
      .String(csv)
      .EndObject();
  return writer.str();
}

std::string PlanLine(const std::string& name, double budget) {
  return "{\"op\":\"plan\",\"problem\":\"" + name +
         "\",\"algo\":\"greedy_minvar\",\"budget\":" + std::to_string(budget) +
         "}";
}

JsonValue ParseOk(const std::string& response) {
  std::string error;
  std::optional<JsonValue> value = JsonValue::Parse(response, &error);
  EXPECT_TRUE(value.has_value()) << error << " in " << response;
  EXPECT_TRUE(value->Find("ok") != nullptr && value->Find("ok")->boolean())
      << response;
  return std::move(*value);
}

std::vector<int> CleanedOf(const JsonValue& plan_response) {
  const JsonValue* cleaned =
      plan_response.Find("result")->Find("selection")->Find("cleaned");
  std::vector<int> out;
  for (const JsonValue& item : cleaned->array()) {
    out.push_back(static_cast<int>(item.number()));
  }
  return out;
}

std::string TestDir(const char* tag) {
  return "/tmp/fc_robust_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

// --- The crash matrix -----------------------------------------------------

// A changelog truncated at EVERY byte offset — the full space of states a
// crash mid-append can leave behind.  Prefixes ending exactly on a line
// boundary load the complete records they hold; every other prefix has a
// torn final line and must fail closed, leaving the problem untouched.
TEST(CrashMatrix, ReplayTruncatedAtEveryByteFailsClosed) {
  CleaningProblem base = MakeProblem();
  const std::string base_csv = data::ProblemToCsv(base);

  std::string log;
  std::vector<std::size_t> boundaries = {0};  // prefix lengths that load
  const std::vector<ProblemDelta> deltas = {
      ProblemDelta::SetCost(0, 9.0),
      ProblemDelta::ReplaceDistribution(
          1, DiscreteDistribution({5.0, 25.0}, {0.5, 0.5})),
      ProblemDelta::SetCurrentValue(2, 4.0),
      ProblemDelta::Clean(3, 13.0),
  };
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    log += EncodeLogRecord(static_cast<std::int64_t>(i) + 1, deltas[i]);
    log += '\n';
    boundaries.push_back(log.size());
  }

  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string prefix = log.substr(0, cut);
    CleaningProblem problem = base;
    std::int64_t last_seq = -1;
    std::string error;
    const bool loaded =
        ReplayChangelog(prefix, /*base_seq=*/0, &problem, &last_seq, &error);
    std::size_t complete = 0;
    bool on_boundary = false;
    for (std::size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] == cut) {
        on_boundary = true;
        complete = b;
      }
    }
    if (on_boundary) {
      ASSERT_TRUE(loaded) << error;
      EXPECT_EQ(last_seq, static_cast<std::int64_t>(complete));
      // Exactly the complete records applied, in order.
      CleaningProblem expected = base;
      for (std::size_t i = 0; i < complete; ++i) expected.Apply(deltas[i]);
      EXPECT_EQ(data::ProblemToCsv(problem), data::ProblemToCsv(expected));
    } else {
      EXPECT_FALSE(loaded);
      EXPECT_FALSE(error.empty());
      // Fail-closed: NOTHING half-applied, even the intact records.
      EXPECT_EQ(data::ProblemToCsv(problem), base_csv);
    }
  }
}

// --- Fsync policy ---------------------------------------------------------

TEST(FsyncPolicy, NamesRoundTrip) {
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatch), "batch");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kOff), "off");
  EXPECT_EQ(ParseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(ParseFsyncPolicy("off"), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").has_value());
}

// The exact durability work per policy: kAlways pays one fsync per
// record, kBatch one per AppendRecords batch (group commit), kOff none.
// Snapshots under kAlways/kBatch sync tmp file + directory + truncated
// log (3); under kOff, none.
TEST(FsyncPolicy, CountsTheExactSyscalls) {
  struct Case {
    FsyncPolicy policy;
    std::int64_t snapshot_syncs;
    std::int64_t append_syncs;  // for one 3-record batch
  };
  const Case cases[] = {
      {FsyncPolicy::kAlways, 3, 3},
      {FsyncPolicy::kBatch, 3, 1},
      {FsyncPolicy::kOff, 0, 0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(FsyncPolicyName(c.policy));
    const std::string dir = TestDir("fsync");
    std::filesystem::remove_all(dir);
    ChangelogStore store(dir);
    store.set_fsync_policy(c.policy);
    std::string error;
    ASSERT_TRUE(store.Init(&error)) << error;
    CleaningProblem problem = MakeProblem();
    ASSERT_TRUE(store.SaveSnapshot(
        "p", EncodeSnapshot(problem, {0, 1}, {1.0, 1.0}, 0), &error))
        << error;
    EXPECT_EQ(store.fsyncs(), c.snapshot_syncs);

    const std::vector<std::string> batch = {
        EncodeLogRecord(1, ProblemDelta::SetCost(0, 2.0)),
        EncodeLogRecord(2, ProblemDelta::SetCost(1, 2.0)),
        EncodeLogRecord(3, ProblemDelta::SetCost(2, 2.0)),
    };
    ASSERT_TRUE(store.AppendRecords("p", batch, &error)) << error;
    EXPECT_EQ(store.fsyncs(), c.snapshot_syncs + c.append_syncs);
    std::filesystem::remove_all(dir);
  }
}

// An acked update under --fsync=always survives a restart bit-identically
// (the strongest policy; the restart machinery itself is policy-blind).
TEST(FsyncPolicy, AckedUpdateSurvivesRestartUnderAlways) {
  const std::string dir = TestDir("always");
  std::filesystem::remove_all(dir);
  CleaningProblem problem = MakeProblem();
  const std::string plan = PlanLine("p", 3.0);
  std::vector<int> live_cleaned;
  {
    PlanningService service;
    std::string error;
    ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
    service.store()->set_fsync_policy(FsyncPolicy::kAlways);
    ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
    ParseOk(service.HandleLine(
        UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 0.25)) + "," +
                            DeltaJson(ProblemDelta::Clean(3, 13.0)) + "]")));
    EXPECT_GT(service.store()->fsyncs(), 0);
    live_cleaned = CleanedOf(ParseOk(service.HandleLine(plan)));
  }
  PlanningService restarted;
  std::string error;
  ASSERT_TRUE(restarted.EnablePersistence(dir, &error)) << error;
  EXPECT_EQ(CleanedOf(ParseOk(restarted.HandleLine(plan))), live_cleaned);
  std::filesystem::remove_all(dir);
}

// --- Injected append failures ---------------------------------------------

// A torn append (crash mid-record) makes PersistDeltas fall back to a
// reconciling snapshot: the update is still acked, the torn log suffix is
// truncated away, and a restart reconstructs exactly the in-memory state.
TEST(CrashMatrix, TornAppendReconcilesThroughTheSnapshot) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "build without FACTCHECK_FAULT_INJECTION";
  }
  fault::DisarmAll();
  const std::string dir = TestDir("torn");
  std::filesystem::remove_all(dir);
  CleaningProblem problem = MakeProblem();
  const std::string plan = PlanLine("p", 3.0);
  std::vector<int> live_cleaned;
  {
    PlanningService service;
    std::string error;
    ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
    ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
    // Tear the very next append mid-record.  The snapshot fallback runs
    // with the fault still armed on the append point only, so it
    // succeeds and reconciles.
    fault::Arm("changelog.append", {.kind = fault::FaultKind::kTornWrite,
                                    .first = 0,
                                    .period = 1,
                                    .max_count = 1,
                                    .bytes_num = 1,
                                    .bytes_den = 2});
    ParseOk(service.HandleLine(
        UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 0.25)) + "," +
                            DeltaJson(ProblemDelta::Clean(3, 13.0)) + "]")));
    EXPECT_EQ(fault::InjectedCount(), 1);
    fault::DisarmAll();
    live_cleaned = CleanedOf(ParseOk(service.HandleLine(plan)));
  }
  // The reconciling snapshot truncated the log: no torn suffix on disk.
  {
    std::ifstream log(dir + "/p.log");
    ASSERT_TRUE(log.good());
    std::string all((std::istreambuf_iterator<char>(log)),
                    std::istreambuf_iterator<char>());
    EXPECT_TRUE(all.empty()) << all;
  }
  PlanningService restarted;
  std::string error;
  ASSERT_TRUE(restarted.EnablePersistence(dir, &error)) << error;
  EXPECT_EQ(CleanedOf(ParseOk(restarted.HandleLine(plan))), live_cleaned);
  std::filesystem::remove_all(dir);
}

// When the disk is gone entirely (append AND snapshot fail), the update
// reports the divergence instead of acking silently — and the service
// keeps serving.
TEST(CrashMatrix, TotalDiskFailureSurfacesInTheResponse) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "build without FACTCHECK_FAULT_INJECTION";
  }
  fault::DisarmAll();
  const std::string dir = TestDir("enospc");
  std::filesystem::remove_all(dir);
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  std::string error;
  ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  fault::Arm("changelog.append", {.kind = fault::FaultKind::kEnospc,
                                  .first = 0,
                                  .period = 1,
                                  .max_count = -1});
  fault::Arm("changelog.snapshot", {.kind = fault::FaultKind::kEnospc,
                                    .first = 0,
                                    .period = 1,
                                    .max_count = -1});
  std::optional<JsonValue> response = JsonValue::Parse(service.HandleLine(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 0.25)) + "]")));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->Find("ok")->boolean());
  EXPECT_NE(response->Find("error")->string().find("applied in memory"),
            std::string::npos)
      << response->Find("error")->string();
  fault::DisarmAll();
  // The disk is back: the next update persists and acks normally.
  ParseOk(service.HandleLine(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(1, 0.5)) + "]")));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace serve
}  // namespace factcheck
