// Theorem 3.9 (alignment of MinVar and MaxPr for centered multivariate
// normals + linear claims), Lemma 3.1 (modular reductions), and the
// knapsack equivalences of Lemma 3.2/3.3.

#include <gtest/gtest.h>

#include <cmath>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/maxpr.h"
#include "dist/mvn.h"
#include "dist/normal.h"
#include "knapsack/knapsack.h"
#include "util/random.h"

namespace factcheck {
namespace {

// Brute-force argmax over feasible subsets of a set objective; ties broken
// by the objective value only (we compare objective values, not sets).
double BestObjectiveValue(const std::vector<double>& costs, double budget,
                          const SetObjective& objective, double sign) {
  Selection sel = sign > 0 ? BruteForceMaximize(costs, budget, objective)
                           : BruteForceMinimize(costs, budget, objective);
  return objective(sel.cleaned);
}

class AlignmentTest : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentTest, Theorem39MinVarAndMaxPrShareOptima) {
  // Independent normals centered at u (diagonal covariance), random linear
  // claim, random costs/budget: the EV-optimal cleaned set must also
  // maximize the surprise probability.  This is the rigorous core of
  // Theorem 3.9 (via Lemma 3.1 both objectives are modular with identical
  // weights a_i^2 sigma_i^2); see Theorem39CorrelatedCaveat below for the
  // correlated case.
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 6;
  Vector variances(n);
  for (auto& v : variances) v = rng.Uniform(0.2, 4.0);
  Matrix cov = Matrix::Diagonal(variances);
  Vector u(n);
  for (auto& v : u) v = rng.Uniform(50, 150);
  MultivariateNormal model(u, cov);
  // Random linear claim (the bias of a linear-claim perturbation set is
  // itself linear, so one linear f covers the fact-checking case).
  Vector a(n);
  for (auto& v : a) v = rng.Uniform(-2, 2);
  LinearQueryFunction f = LinearQueryFunction::FromDense(a);
  std::vector<double> costs(n);
  for (auto& c : costs) c = rng.Uniform(0.5, 3);
  double budget = rng.Uniform(2, 8);
  double tau = rng.Uniform(0.1, 2.0);

  // MinVar objective: EV(T) under the MVN.
  SetObjective ev = [&](const std::vector<int>& t) {
    return model.ExpectedConditionalVariance(a, t);
  };
  // MaxPr objective: conditioned on rest = u and centered errors,
  // Pr = Phi(-tau / sqrt(Var[a_T' X_T | X_rest = u_rest])).  The variance
  // of the cleaned part conditioned on the rest is the complementary
  // Schur complement.
  SetObjective surprise = [&](const std::vector<int>& t) {
    if (t.empty()) return 0.0;
    // Var[f(X) - f(u) | X_{O \ T} = u]: condition the cleaned block on the
    // uncleaned block.
    std::vector<bool> in_t(n, false);
    for (int i : t) in_t[i] = true;
    std::vector<int> rest;
    Vector a_t;
    for (int i = 0; i < n; ++i) {
      if (in_t[i]) {
        a_t.push_back(a[i]);
      } else {
        rest.push_back(i);
      }
    }
    std::vector<int> t_sorted = t;
    std::sort(t_sorted.begin(), t_sorted.end());
    Matrix cond = SchurComplement(cov, rest, t_sorted);
    double var = QuadraticForm(a_t, cond, a_t);
    if (var <= 0) return 0.0;
    return StdNormalCdf(-tau / std::sqrt(var));
  };

  double best_ev = BestObjectiveValue(costs, budget, ev, -1);
  Selection maxpr_opt = BruteForceMaximize(costs, budget, surprise);
  // Theorem 3.9: the MaxPr-optimal set achieves the optimal EV too.
  EXPECT_NEAR(ev(maxpr_opt.cleaned), best_ev, 1e-9 * (1 + best_ev))
      << "seed " << seed;
  // And conversely.
  Selection minvar_opt = BruteForceMinimize(costs, budget, ev);
  double best_pr = BestObjectiveValue(costs, budget, surprise, +1);
  EXPECT_NEAR(surprise(minvar_opt.cleaned), best_pr, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentTest, ::testing::Range(1, 11));

TEST(AlignmentTest, Theorem39CorrelatedCaveat) {
  // Reproduction note (documented in DESIGN.md): Theorem 3.9's proof
  // equates "minimize the covariance mass of the uncleaned block" with
  // "maximize the covariance mass of the cleaned block", which drops the
  // cross-block covariance term.  Under the strict conditional reading of
  // Eq. (2), mixed-sign correlations give a counterexample:
  //   Var = (1.01, 1, 1), Cov(0,1) = +0.8, Cov(0,2) = -0.8, Cov(1,2) = 0,
  //   a = (1, 1, 1), unit costs, budget 1.
  // Cleaned-block variance is maximized by {0}; uncleaned-block variance
  // is minimized by cleaning {1} (leaving the negatively correlated pair
  // {0, 2} whose covariance cancels).
  Matrix cov(3, 3);
  cov(0, 0) = 1.01;
  cov(1, 1) = cov(2, 2) = 1.0;
  cov(0, 1) = cov(1, 0) = 0.8;
  cov(0, 2) = cov(2, 0) = -0.8;
  Vector a = {1.0, 1.0, 1.0};
  std::vector<double> costs = {1, 1, 1};
  // Marginal-covariance forms used by the paper's proof:
  SetObjective cleaned_block_mass = [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) {
      for (int j : t) acc += cov(i, j);
    }
    return acc;
  };
  SetObjective uncleaned_block_mass = [&](const std::vector<int>& t) {
    std::vector<bool> in(3, false);
    for (int i : t) in[i] = true;
    double acc = 0;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (!in[i] && !in[j]) acc += cov(i, j);
      }
    }
    return acc;
  };
  Selection maxpr = BruteForceMaximize(costs, 1.0, cleaned_block_mass);
  Selection minvar = BruteForceMinimize(costs, 1.0, uncleaned_block_mass);
  EXPECT_EQ(maxpr.cleaned, (std::vector<int>{0}));
  EXPECT_EQ(minvar.cleaned, (std::vector<int>{1}));
  EXPECT_NE(maxpr.cleaned, minvar.cleaned);
}

TEST(ModularReductionTest, Lemma31MinVarWeights) {
  // Independent X, affine f: greedy on w_i = a_i^2 Var[X_i] equals the
  // adaptive greedy on exact EV.
  Rng rng(5);
  int n = 7;
  std::vector<UncertainObject> objects(n);
  std::vector<double> coeffs(n);
  for (int i = 0; i < n; ++i) {
    double m = rng.Uniform(0, 100);
    double s = rng.Uniform(1, 10);
    objects[i].current_value = m;
    objects[i].dist = DiscreteDistribution({m - s, m + s}, {0.5, 0.5});
    objects[i].cost = rng.Uniform(1, 5);
    coeffs[i] = rng.Uniform(-2, 2);
  }
  CleaningProblem problem(std::move(objects));
  LinearQueryFunction f = LinearQueryFunction::FromDense(coeffs);
  double budget = problem.TotalCost() * 0.4;
  Selection modular = GreedyMinVarLinearIndependent(
      f, problem.Variances(), problem.Costs(), budget);
  Selection adaptive = GreedyMinVar(f, problem, budget);
  EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, modular.cleaned),
              ExpectedPosteriorVariance(f, problem, adaptive.cleaned), 1e-9);
}

TEST(ModularReductionTest, Lemma32KnapsackDpIsOptimum) {
  // The "Optimum" algorithm of Section 4.1: min-knapsack DP over
  // w_i = a_i^2 Var[X_i] yields the smallest achievable EV.
  Rng rng(6);
  int n = 9;
  std::vector<double> variances(n), costs(n), coeffs(n);
  for (int i = 0; i < n; ++i) {
    variances[i] = rng.Uniform(0.5, 20);
    costs[i] = static_cast<double>(rng.UniformInt(1, 6));
    coeffs[i] = rng.Uniform(-2, 2);
  }
  double budget = 9.0;
  std::vector<double> weights(n);
  for (int i = 0; i < n; ++i) {
    weights[i] = coeffs[i] * coeffs[i] * variances[i];
  }
  // DP over "what to clean" (max removed weight).
  std::vector<int> int_costs(n);
  for (int i = 0; i < n; ++i) int_costs[i] = static_cast<int>(costs[i]);
  KnapsackSolution dp = MaxKnapsackDp(weights, int_costs, 9);
  // Brute force over subsets of the modular EV.
  SetObjective ev = [&](const std::vector<int>& t) {
    double total = 0;
    for (double w : weights) total += w;
    for (int i : t) total -= weights[i];
    return total;
  };
  Selection opt = BruteForceMinimize(costs, budget, ev);
  EXPECT_NEAR(ev(dp.selected), ev(opt.cleaned), 1e-9);
}

TEST(ModularReductionTest, Lemma33MaxPrEquivalentToMaxKnapsack) {
  // Centered independent normals + affine f: maximizing the surprise
  // probability == maximizing sum a_i^2 sigma_i^2 (knapsack).
  Rng rng(7);
  int n = 8;
  std::vector<double> stddevs(n), costs(n), coeffs(n), means(n), current(n);
  for (int i = 0; i < n; ++i) {
    stddevs[i] = rng.Uniform(0.5, 5);
    costs[i] = rng.Uniform(0.5, 4);
    coeffs[i] = rng.Uniform(-2, 2);
    means[i] = current[i] = rng.Uniform(10, 50);
  }
  LinearQueryFunction f = LinearQueryFunction::FromDense(coeffs);
  double budget = 7.0, tau = 1.0;
  SetObjective surprise = [&](const std::vector<int>& t) {
    return SurpriseProbabilityNormal(f, means, stddevs, current, t, tau);
  };
  Selection pr_opt = BruteForceMaximize(costs, budget, surprise);
  std::vector<double> weights = MaxPrModularWeights(f, stddevs, n);
  SetObjective weight_sum = [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += weights[i];
    return acc;
  };
  Selection w_opt = BruteForceMaximize(costs, budget, weight_sum);
  EXPECT_NEAR(surprise(pr_opt.cleaned), surprise(w_opt.cleaned), 1e-12);
}

TEST(MisalignmentTest, Example5StyleDiscreteInstancesCanDisagree) {
  // Sanity companion to AlignmentTest: with non-normal discrete errors the
  // optima may differ (Example 5 is the canonical witness, asserted
  // exactly in paper_examples_test; here we just confirm the brute-force
  // machinery can express the disagreement).
  std::vector<UncertainObject> objects(2);
  objects[0].current_value = 1.0;
  objects[0].dist =
      DiscreteDistribution({0, 0.5, 1, 1.5, 2}, {0.2, 0.2, 0.2, 0.2, 0.2});
  objects[0].cost = 1.0;
  objects[1].current_value = 1.0;
  objects[1].dist = DiscreteDistribution({1.0 / 3, 1.0, 5.0 / 3},
                                         {1.0 / 3, 1.0 / 3, 1.0 / 3});
  objects[1].cost = 1.0;
  CleaningProblem problem(std::move(objects));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  SetObjective ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, problem, t);
  };
  SetObjective surprise = [&](const std::vector<int>& t) {
    return SurpriseProbabilityExact(f, problem, t, 2.0 - 17.0 / 12);
  };
  Selection minvar = BruteForceMinimize(problem.Costs(), 1.0, ev);
  Selection maxpr = BruteForceMaximize(problem.Costs(), 1.0, surprise);
  EXPECT_EQ(minvar.cleaned, (std::vector<int>{0}));
  EXPECT_EQ(maxpr.cleaned, (std::vector<int>{1}));
}

}  // namespace
}  // namespace factcheck
