#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "dist/convolution.h"
#include "util/random.h"

namespace factcheck {
namespace {

DiscreteDistribution Die() {
  return DiscreteDistribution({1, 2, 3, 4, 5, 6},
                              std::vector<double>(6, 1.0 / 6));
}

TEST(ConvolveSumTest, EmptyTermListIsZeroPointMass) {
  SumDistribution d = ConvolveSum({});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0].value, 0.0);
  EXPECT_DOUBLE_EQ(d[0].prob, 1.0);
}

TEST(ConvolveSumTest, TwoDiceSumDistribution) {
  DiscreteDistribution die = Die();
  SumDistribution d = ConvolveSum({{&die, 1.0}, {&die, 1.0}});
  ASSERT_EQ(d.size(), 11u);  // 2..12
  EXPECT_DOUBLE_EQ(d.front().value, 2.0);
  EXPECT_DOUBLE_EQ(d.back().value, 12.0);
  // P(sum = 7) = 6/36.
  for (const SumAtom& a : d) {
    if (a.value == 7.0) {
      EXPECT_NEAR(a.prob, 6.0 / 36, 1e-12);
    }
  }
  double total = 0;
  for (const SumAtom& a : d) total += a.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ConvolveSumTest, CoefficientsScaleAndFlip) {
  DiscreteDistribution coin({0, 1}, {0.5, 0.5});
  SumDistribution d = ConvolveSum({{&coin, 2.0}, {&coin, -1.0}});
  // Values: 0-0=0, 0-1=-1, 2-0=2, 2-1=1.
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0].value, -1.0);
  EXPECT_DOUBLE_EQ(d[3].value, 2.0);
}

TEST(ConvolveSumTest, MeanAndVarianceAreAdditive) {
  Rng rng(3);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5, {.size = 6});
  std::vector<WeightedTerm> terms;
  double expected_mean = 0, expected_var = 0;
  std::vector<double> coeffs = {1.0, -2.0, 0.5, 1.5, -1.0, 3.0};
  for (int i = 0; i < 6; ++i) {
    terms.push_back({&p.object(i).dist, coeffs[i]});
    expected_mean += coeffs[i] * p.object(i).dist.Mean();
    expected_var += coeffs[i] * coeffs[i] * p.object(i).dist.Variance();
  }
  SumDistribution d = ConvolveSum(terms);
  EXPECT_NEAR(SumMean(d), expected_mean, 1e-8);
  EXPECT_NEAR(SumVariance(d), expected_var, 1e-6);
}

TEST(ConvolveSumTest, PointMassesShiftWithoutGrowth) {
  DiscreteDistribution pm = DiscreteDistribution::PointMass(5.0);
  DiscreteDistribution coin({0, 1}, {0.5, 0.5});
  SumDistribution d = ConvolveSum({{&pm, 2.0}, {&coin, 1.0}, {&pm, -1.0}});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].value, 5.0);  // 10 + 0 - 5
  EXPECT_DOUBLE_EQ(d[1].value, 6.0);
}

TEST(ConvolveSumTest, IntegerCollisionsMerge) {
  // X + Y with X, Y in {0, 1, 2}: 9 combinations, 5 distinct sums.
  DiscreteDistribution tri({0, 1, 2}, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  SumDistribution d = ConvolveSum({{&tri, 1.0}, {&tri, 1.0}});
  EXPECT_EQ(d.size(), 5u);
}

TEST(ConvolveSum2Test, SharedVariableInducesCorrelation) {
  DiscreteDistribution coin({0, 1}, {0.5, 0.5});
  // (X, 2X): perfectly correlated pair.
  SumDistribution2 d = ConvolveSum2({{&coin, 1.0, 2.0}});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].a, 0.0);
  EXPECT_DOUBLE_EQ(d[0].b, 0.0);
  EXPECT_DOUBLE_EQ(d[1].a, 1.0);
  EXPECT_DOUBLE_EQ(d[1].b, 2.0);
}

TEST(ConvolveSum2Test, JointOfDisjointPairsFactorizes) {
  DiscreteDistribution coin({0, 1}, {0.5, 0.5});
  // (X, Y) via terms (X -> a only) and (Y -> b only).
  SumDistribution2 d =
      ConvolveSum2({{&coin, 1.0, 0.0}, {&coin, 0.0, 1.0}});
  ASSERT_EQ(d.size(), 4u);
  for (const SumAtom2& a : d) EXPECT_NEAR(a.prob, 0.25, 1e-12);
}

TEST(ConvolveSum2Test, MarginalsMatch1D) {
  Rng rng(7);
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 11, {.size = 4});
  std::vector<WeightedTerm2> terms2;
  std::vector<WeightedTerm> terms_a;
  std::vector<double> ca = {1.0, 0.5, -1.0, 2.0};
  std::vector<double> cb = {0.0, 1.0, 1.0, -0.5};
  for (int i = 0; i < 4; ++i) {
    terms2.push_back({&p.object(i).dist, ca[i], cb[i]});
    terms_a.push_back({&p.object(i).dist, ca[i]});
  }
  SumDistribution2 joint = ConvolveSum2(terms2);
  SumDistribution marg_a = ConvolveSum(terms_a);
  // Collapse the joint onto coordinate a and compare moments.
  double mean_a = 0;
  for (const SumAtom2& a : joint) mean_a += a.prob * a.a;
  EXPECT_NEAR(mean_a, SumMean(marg_a), 1e-8);
}

TEST(SumStatsTest, ProbBelowAndEntropy) {
  DiscreteDistribution coin({0, 1}, {0.5, 0.5});
  SumDistribution d = ConvolveSum({{&coin, 1.0}});
  EXPECT_DOUBLE_EQ(SumProbBelow(d, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(SumProbBelow(d, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SumProbBelow(d, 2.0), 1.0);
  EXPECT_NEAR(SumEntropy(d), std::log(2.0), 1e-12);
  SumDistribution pm = ConvolveSum({});
  EXPECT_DOUBLE_EQ(SumEntropy(pm), 0.0);
}

TEST(SumToDiscreteTest, RoundTripsMoments) {
  DiscreteDistribution die = Die();
  SumDistribution d = ConvolveSum({{&die, 1.0}, {&die, 1.0}});
  DiscreteDistribution back = SumToDiscrete(d);
  EXPECT_NEAR(back.Mean(), 7.0, 1e-12);
  EXPECT_NEAR(back.Variance(), 2.0 * 35.0 / 12, 1e-12);
}

}  // namespace
}  // namespace factcheck
