// The serving layer (src/serve): the JSON request parser, the latency
// histogram, the PlanningService protocol — including bit-identical
// equivalence of a served plan to the one-shot Planner path and the
// cross-request engine-cache reuse the service exists for — the Unix
// socket transport, and the thread-safety contracts the service leans on
// (concurrent lazy planes builds, the engine's single-writer guard).
//
// The suite carries the `stress` label: the concurrency tests here are
// the TSan job's main target (.github/workflows/ci.yml).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/delta.h"
#include "core/engine.h"
#include "core/ev.h"
#include "core/object.h"
#include "core/planner.h"
#include "core/problem.h"
#include "core/query_function.h"
#include "data/problem_io.h"
#include "dist/planes.h"
#include "serve/changelog.h"
#include "serve/json_value.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "util/json.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FACTCHECK_TSAN 1
#endif
#endif

namespace factcheck {
namespace serve {
namespace {

// --- Fixtures --------------------------------------------------------------

// A small deterministic instance: mixed costs, 3-atom supports.
CleaningProblem MakeProblem(int n = 6) {
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.25 * (i % 3);
    double mid = 10.0 + i;
    object.dist = DiscreteDistribution({mid - 1.0, mid, mid + 2.0 + 0.5 * i},
                                       {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

std::string RegisterLine(const std::string& name, const std::string& csv) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("op")
      .String("register")
      .Key("problem")
      .String(name)
      .Key("csv")
      .String(csv)
      .EndObject();
  return writer.str();
}

std::string PlanLine(const std::string& name, const std::string& algo,
                     double budget) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("op")
      .String("plan")
      .Key("problem")
      .String(name)
      .Key("algo")
      .String(algo)
      .Key("budget")
      .Number(budget)
      .EndObject();
  return writer.str();
}

JsonValue ParseOk(const std::string& response) {
  std::string error;
  std::optional<JsonValue> value = JsonValue::Parse(response, &error);
  EXPECT_TRUE(value.has_value()) << error << " in " << response;
  EXPECT_TRUE(value->Find("ok") != nullptr && value->Find("ok")->boolean())
      << response;
  return std::move(*value);
}

std::vector<int> CleanedOf(const JsonValue& plan_response) {
  const JsonValue* cleaned =
      plan_response.Find("result")->Find("selection")->Find("cleaned");
  std::vector<int> out;
  for (const JsonValue& item : cleaned->array()) {
    out.push_back(static_cast<int>(item.number()));
  }
  return out;
}

std::int64_t StatOf(const JsonValue& plan_response, const std::string& key) {
  return static_cast<std::int64_t>(
      plan_response.Find("result")->Find("stats")->Find(key)->number());
}

// --- JsonValue -------------------------------------------------------------

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->boolean());
  EXPECT_FALSE(JsonValue::Parse("false")->boolean());
  EXPECT_EQ(JsonValue::Parse("42")->number(), 42.0);
  EXPECT_EQ(JsonValue::Parse("-0.5")->number(), -0.5);
  EXPECT_EQ(JsonValue::Parse("1e3")->number(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("  \"hi\"  ")->string(), "hi");
}

TEST(JsonValue, ParsesEscapesAndSurrogatePairs) {
  EXPECT_EQ(JsonValue::Parse("\"a\\nb\\t\\\\\\\"\"")->string(), "a\nb\t\\\"");
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\"")->string(), "A");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::Parse("\"\\uD83D\\uDE00\"")->string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonValue, ParsesNestedDocuments) {
  std::optional<JsonValue> doc = JsonValue::Parse(
      "{\"op\":\"plan\",\"refs\":[0,1,2],\"opts\":{\"lazy\":true}}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("op")->string(), "plan");
  EXPECT_EQ(doc->Find("refs")->array().size(), 3u);
  EXPECT_EQ(doc->Find("refs")->array()[2].number(), 2.0);
  EXPECT_TRUE(doc->Find("opts")->Find("lazy")->boolean());
  EXPECT_EQ(doc->Find("missing"), nullptr);
  EXPECT_EQ(doc->Find("refs")->Find("x"), nullptr);  // not an object
}

TEST(JsonValue, DuplicateKeysKeepTheLast) {
  EXPECT_EQ(JsonValue::Parse("{\"a\":1,\"a\":2}")->Find("a")->number(), 2.0);
}

TEST(JsonValue, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
  EXPECT_FALSE(JsonValue::Parse("01", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("nulle", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("\"\\uD83D\"", &error).has_value());  // lone
  EXPECT_FALSE(JsonValue::Parse("\"raw\ntab\"", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]", &error).has_value());
}

TEST(JsonValue, DepthCapStopsHostileNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
  // A legal depth parses.
  std::string ok(40, '[');
  ok += "1" + std::string(40, ']');
  EXPECT_TRUE(JsonValue::Parse(ok).has_value());
}

TEST(JsonValue, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("pi")
      .Number(3.141592653589793)
      .Key("s")
      .String("a\"b\\c\n")
      .Key("xs")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .EndObject();
  std::optional<JsonValue> doc = JsonValue::Parse(writer.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("pi")->number(), 3.141592653589793);  // bit-exact
  EXPECT_EQ(doc->Find("s")->string(), "a\"b\\c\n");
}

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, QuantilesAreWithinBucketResolution) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.p50(), 0.0);
  for (int i = 0; i < 99; ++i) histogram.Record(1e-3);  // 1ms
  histogram.Record(2.0);  // one slow outlier
  EXPECT_EQ(histogram.count(), 100);
  // Bucket upper bounds: within 2x above the true value, never below.
  EXPECT_GE(histogram.p50(), 1e-3);
  EXPECT_LT(histogram.p50(), 2e-3);
  EXPECT_GE(histogram.p99(), 1e-3);
  EXPECT_LE(histogram.p50(), histogram.p99());
  EXPECT_GE(histogram.Quantile(1.0), 2.0);  // the outlier's bucket
}

TEST(LatencyHistogram, ClampsOutOfRangeSamples) {
  LatencyHistogram histogram;
  histogram.Record(-1.0);      // clamps to the zero bucket
  histogram.Record(1e9);       // clamps to the top bucket
  EXPECT_EQ(histogram.count(), 2);
  EXPECT_GT(histogram.Quantile(1.0), 0.0);
}

// --- PlanningService: protocol --------------------------------------------

TEST(PlanningService, PingStatsAndUnknownOp) {
  PlanningService service;
  EXPECT_EQ(service.HandleLine("{\"op\":\"ping\"}"),
            "{\"ok\":true,\"op\":\"ping\"}");
  JsonValue stats = ParseOk(service.HandleLine("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.Find("stats")->Find("total_requests")->number(), 0.0);
  EXPECT_TRUE(stats.Find("stats")->Find("problems")->array().empty());

  std::optional<JsonValue> error =
      JsonValue::Parse(service.HandleLine("{\"op\":\"nope\"}"));
  ASSERT_TRUE(error.has_value());
  EXPECT_FALSE(error->Find("ok")->boolean());
  EXPECT_NE(error->Find("error")->string().find("unknown op"),
            std::string::npos);
}

TEST(PlanningService, MalformedLinesComeBackAsErrors) {
  PlanningService service;
  for (const char* line : {"", "not json", "[1,2]", "{\"no_op\":1}"}) {
    std::optional<JsonValue> response = JsonValue::Parse(service.HandleLine(line));
    ASSERT_TRUE(response.has_value()) << line;
    EXPECT_FALSE(response->Find("ok")->boolean()) << line;
    EXPECT_TRUE(response->Find("error")->is_string()) << line;
  }
}

TEST(PlanningService, RegisterReportsTheProblemShape) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  JsonValue response = ParseOk(
      service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  EXPECT_EQ(response.Find("objects")->number(), problem.size());
  EXPECT_EQ(response.Find("total_cost")->number(), problem.TotalCost());
}

TEST(PlanningService, RegisterErrorPaths) {
  CleaningProblem problem = MakeProblem();
  const std::string csv = data::ProblemToCsv(problem);
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", csv)));

  // Duplicate name.
  std::optional<JsonValue> dup =
      JsonValue::Parse(service.HandleLine(RegisterLine("p", csv)));
  EXPECT_FALSE(dup->Find("ok")->boolean());
  EXPECT_NE(dup->Find("error")->string().find("already registered"),
            std::string::npos);

  // Malformed CSV.
  std::optional<JsonValue> bad =
      JsonValue::Parse(service.HandleLine(RegisterLine("q", "label,current\nx")));
  EXPECT_FALSE(bad->Find("ok")->boolean());

  // Out-of-range query ref.
  std::string error;
  EXPECT_FALSE(service.RegisterProblem("r", csv, {0, 99}, {}, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(PlanningService, PlanErrorPaths) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));

  auto expect_error = [&](const std::string& line, const char* needle) {
    std::optional<JsonValue> response = JsonValue::Parse(service.HandleLine(line));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->Find("ok")->boolean()) << line;
    EXPECT_NE(response->Find("error")->string().find(needle),
              std::string::npos)
        << response->Find("error")->string();
  };
  expect_error(PlanLine("ghost", "greedy_minvar", 2.0), "unknown problem");
  expect_error(PlanLine("p", "ghost_algo", 2.0), "unknown algorithm");
  expect_error("{\"op\":\"plan\",\"problem\":\"p\",\"algo\":\"greedy_minvar\"}",
               "\"budget\" or \"budget_frac\"");
  expect_error(
      "{\"op\":\"plan\",\"problem\":\"p\",\"algo\":\"greedy_minvar\","
      "\"budget\":\"two\"}",
      "must be a number");
  // Errors leave the service usable.
  ParseOk(service.HandleLine(PlanLine("p", "greedy_minvar", 2.0)));
}

// --- PlanningService: equivalence + cache reuse ----------------------------

// A served plan is bit-identical to the one-shot Planner path on the same
// problem/query/budget — selection, cost, objective value, trajectory.
TEST(PlanningService, PlanMatchesOneShotPlanner) {
  CleaningProblem problem = MakeProblem();
  std::vector<int> refs(problem.size());
  for (int i = 0; i < problem.size(); ++i) refs[i] = i;
  LinearQueryFunction query(refs, std::vector<double>(refs.size(), 1.0));

  PlanRequest request;
  request.problem = &problem;
  request.query = &query;
  request.linear_query = &query;
  request.budget = 3.0;
  Planner planner;
  PlanResult oracle = planner.Plan(request, "greedy_minvar");

  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  JsonValue response =
      ParseOk(service.HandleLine(PlanLine("p", "greedy_minvar", 3.0)));

  EXPECT_EQ(CleanedOf(response),
            std::vector<int>(oracle.selection.cleaned.begin(),
                             oracle.selection.cleaned.end()));
  const JsonValue* result = response.Find("result");
  EXPECT_EQ(result->Find("selection")->Find("cost")->number(),
            oracle.selection.cost);
  EXPECT_EQ(result->Find("objective_value")->number(),
            oracle.objective_value);
  const std::vector<JsonValue>& trajectory =
      result->Find("trajectory")->array();
  ASSERT_EQ(trajectory.size(), oracle.trajectory.size());
  for (size_t i = 0; i < trajectory.size(); ++i) {
    EXPECT_EQ(trajectory[i].number(), oracle.trajectory[i]);  // bit-exact
  }
  // First request on a cold service engine does the same evaluation work
  // as the one-shot path.
  EXPECT_EQ(StatOf(response, "evaluations"), oracle.stats.evaluations);
}

TEST(PlanningService, RepeatRequestsServeFromTheWarmEngine) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));

  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  JsonValue first = ParseOk(service.HandleLine(line));
  JsonValue second = ParseOk(service.HandleLine(line));

  EXPECT_EQ(CleanedOf(second), CleanedOf(first));
  EXPECT_EQ(first.Find("requests")->number(), 1.0);
  EXPECT_EQ(second.Find("requests")->number(), 2.0);
  // The tentpole property: the second request's evaluation count is
  // frozen (every set it probes is already memoized) while cache hits
  // keep growing.
  EXPECT_EQ(StatOf(second, "evaluations"), StatOf(first, "evaluations"));
  EXPECT_GT(StatOf(second, "cache_hits"), StatOf(first, "cache_hits"));
  EXPECT_EQ(service.total_requests(), 2);
}

TEST(PlanningService, StatsDocumentAggregatesPerProblem) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  ParseOk(service.HandleLine(line));
  ParseOk(service.HandleLine(line));

  std::string error;
  std::optional<JsonValue> stats = JsonValue::Parse(service.StatsJson(), &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->Find("total_requests")->number(), 2.0);
  const std::vector<JsonValue>& problems = stats->Find("problems")->array();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0].Find("name")->string(), "p");
  EXPECT_EQ(problems[0].Find("requests")->number(), 2.0);
  EXPECT_EQ(problems[0].Find("latency")->Find("count")->number(), 2.0);
  EXPECT_GE(problems[0].Find("latency")->Find("p99_ms")->number(),
            problems[0].Find("latency")->Find("p50_ms")->number());
  const std::vector<JsonValue>& engines = problems[0].Find("engines")->array();
  ASSERT_EQ(engines.size(), 1u);
  EXPECT_EQ(engines[0].Find("objective")->string(), "minvar");
  EXPECT_GT(engines[0].Find("evaluations")->number(), 0.0);
}

// --- PlanningService: concurrency ------------------------------------------

// N client threads hammer one problem.  Every response must carry the
// bit-identical selection of the single-threaded oracle, and the engine's
// cumulative cache_hits must be monotone in service order — the properties
// the service_scaling bench gate quantifies.
TEST(PlanningService, ConcurrentClientsMatchTheSingleThreadedOracle) {
  CleaningProblem problem = MakeProblem(10);
  const std::string csv = data::ProblemToCsv(problem);
  const std::string line = PlanLine("p", "greedy_minvar", 4.0);

  PlanningService oracle_service;
  ParseOk(oracle_service.HandleLine(RegisterLine("p", csv)));
  const std::vector<int> oracle =
      CleanedOf(ParseOk(oracle_service.HandleLine(line)));

  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", csv)));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::string> responses(kThreads * kPerThread);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int r = 0; r < kPerThread; ++r) {
        responses[t * kPerThread + r] = service.HandleLine(line);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // (request ordinal, lifetime cache_hits at that point).
  std::vector<std::pair<std::int64_t, std::int64_t>> order;
  for (const std::string& text : responses) {
    JsonValue response = ParseOk(text);
    EXPECT_EQ(CleanedOf(response), oracle);
    order.emplace_back(
        static_cast<std::int64_t>(response.Find("requests")->number()),
        StatOf(response, "cache_hits"));
  }
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i].first, static_cast<std::int64_t>(i) + 1)
        << "request ordinals must be a permutation of 1..N";
    if (i > 0) {
      EXPECT_GE(order[i].second, order[i - 1].second)
          << "cache_hits must grow monotonically across requests";
    }
  }
  EXPECT_EQ(service.total_requests(), kThreads * kPerThread);
}

TEST(PlanningService, DistinctProblemsPlanInParallel) {
  PlanningService service;
  constexpr int kProblems = 4;
  std::vector<std::string> lines;
  for (int p = 0; p < kProblems; ++p) {
    std::string name = "p" + std::to_string(p);
    ParseOk(service.HandleLine(
        RegisterLine(name, data::ProblemToCsv(MakeProblem(6 + p)))));
    lines.push_back(PlanLine(name, "greedy_minvar", 3.0));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int p = 0; p < kProblems; ++p) {
    threads.emplace_back([&, p] {
      for (int r = 0; r < 4; ++r) {
        std::optional<JsonValue> response =
            JsonValue::Parse(service.HandleLine(lines[p]));
        if (!response.has_value() || !response->Find("ok")->boolean()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.total_requests(), kProblems * 4);
}

// --- PlanningService: the update verb + persistence -------------------------

std::string DeltaJson(const ProblemDelta& delta) {
  JsonWriter writer;
  WriteDeltaJson(delta, writer);
  return writer.str();
}

std::string UpdateLine(const std::string& name,
                       const std::string& deltas_array) {
  return "{\"op\":\"update\",\"problem\":\"" + name +
         "\",\"deltas\":" + deltas_array + "}";
}

std::int64_t EpochOf(PlanningService& service, const std::string& name) {
  JsonValue stats = ParseOk(service.HandleLine("{\"op\":\"stats\"}"));
  for (const JsonValue& problem : stats.Find("stats")->Find("problems")->array()) {
    if (problem.Find("name")->string() == name) {
      return static_cast<std::int64_t>(problem.Find("epoch")->number());
    }
  }
  ADD_FAILURE() << "problem " << name << " missing from stats";
  return -1;
}

// The stale-cache regression this PR fixes: a problem mutation between
// two plans on the same session engine must force re-evaluation, and the
// re-planned selection must be bit-identical to a cold service planning
// the mutated problem from scratch.
TEST(PlanningService, MutationBetweenPlansReEvaluates) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  JsonValue first = ParseOk(service.HandleLine(line));
  JsonValue warm = ParseOk(service.HandleLine(line));
  EXPECT_EQ(StatOf(warm, "evaluations"), StatOf(first, "evaluations"));

  // Blow up object 0's uncertainty; the optimal selection changes.
  DiscreteDistribution wide({0.0, 60.0}, {0.5, 0.5});
  JsonValue updated = ParseOk(service.HandleLine(UpdateLine(
      "p", "[" + DeltaJson(ProblemDelta::ReplaceDistribution(0, wide)) + "]")));
  EXPECT_EQ(updated.Find("applied")->number(), 1.0);
  EXPECT_EQ(updated.Find("epoch")->number(), 1.0);
  EXPECT_EQ(updated.Find("objects")->number(), problem.size());

  JsonValue replanned = ParseOk(service.HandleLine(line));
  // Before the epoch protocol the warm memo served the pre-mutation
  // values: evaluations stayed frozen and the selection was stale.
  EXPECT_GT(StatOf(replanned, "evaluations"), StatOf(warm, "evaluations"));
  EXPECT_GT(StatOf(replanned, "cache_evictions"), 0);

  CleaningProblem mutated = problem;
  mutated.ReplaceDistribution(0, wide);
  PlanningService oracle;
  ParseOk(oracle.HandleLine(RegisterLine("p", data::ProblemToCsv(mutated))));
  JsonValue expected = ParseOk(oracle.HandleLine(line));
  EXPECT_EQ(CleanedOf(replanned), CleanedOf(expected));
  const std::vector<JsonValue>& trajectory =
      replanned.Find("result")->Find("trajectory")->array();
  const std::vector<JsonValue>& oracle_trajectory =
      expected.Find("result")->Find("trajectory")->array();
  ASSERT_EQ(trajectory.size(), oracle_trajectory.size());
  for (size_t i = 0; i < trajectory.size(); ++i) {
    EXPECT_EQ(trajectory[i].number(), oracle_trajectory[i].number());
  }
}

TEST(PlanningService, UpdateErrorPathsAreAllOrNothing) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));

  auto expect_error = [&](const std::string& line, const char* needle) {
    std::optional<JsonValue> response =
        JsonValue::Parse(service.HandleLine(line));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->Find("ok")->boolean()) << line;
    EXPECT_NE(response->Find("error")->string().find(needle),
              std::string::npos)
        << response->Find("error")->string();
  };
  expect_error(UpdateLine("ghost", "[{\"kind\":\"set_cost\",\"object\":0,"
                                   "\"cost\":1}]"),
               "unknown problem");
  expect_error("{\"op\":\"update\",\"problem\":\"p\"}",
               "\"deltas\" must be a non-empty array");
  expect_error(UpdateLine("p", "[]"), "non-empty array");
  expect_error(UpdateLine("p", "7"), "non-empty array");
  // A defect anywhere in the batch rejects the whole batch: valid first
  // delta, malformed second — the valid one must NOT have been applied.
  expect_error(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 9.0)) +
                          ",{\"kind\":\"bogus\"}]"),
      "deltas[1]");
  EXPECT_EQ(EpochOf(service, "p"), 0);
  // Same for a structurally invalid delta (index out of range).
  expect_error(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 9.0)) + "," +
                          DeltaJson(ProblemDelta::SetCost(99, 1.0)) + "]"),
      "deltas[1]");
  EXPECT_EQ(EpochOf(service, "p"), 0);
  // Errors leave the service usable.
  ParseOk(service.HandleLine(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 9.0)) + "]")));
  EXPECT_EQ(EpochOf(service, "p"), 1);
}

TEST(PlanningService, UpdateRejectsRemovingQueryReferencedObjects) {
  CleaningProblem problem = MakeProblem(6);
  const std::string csv = data::ProblemToCsv(problem);
  PlanningService service;
  std::string error;
  // "head" only references objects 0 and 1; "tail" references the last.
  ASSERT_TRUE(service.RegisterProblem("head", csv, {0, 1}, {1.0, 1.0}, &error))
      << error;
  ASSERT_TRUE(service.RegisterProblem("tail", csv, {0, 5}, {1.0, 1.0}, &error))
      << error;

  const std::string removal =
      "[" + DeltaJson(ProblemDelta::RemoveObject(5)) + "]";
  JsonValue ok = ParseOk(service.HandleLine(UpdateLine("head", removal)));
  EXPECT_EQ(ok.Find("objects")->number(), 5.0);

  std::optional<JsonValue> rejected =
      JsonValue::Parse(service.HandleLine(UpdateLine("tail", removal)));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->Find("ok")->boolean());
  EXPECT_NE(rejected->Find("error")->string().find("cannot be removed"),
            std::string::npos)
      << rejected->Find("error")->string();
  EXPECT_EQ(EpochOf(service, "tail"), 0);
}

std::string TestChangelogDir(const char* tag) {
  return "/tmp/fc_serve_chlog_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

// A restarted service replays the changelog and serves plans bit-identical
// to the never-restarted one — the tentpole's durability contract.
TEST(PlanningService, RestartFromChangelogIsBitIdentical) {
  const std::string dir = TestChangelogDir("restart");
  std::filesystem::remove_all(dir);
  CleaningProblem problem = MakeProblem();
  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  std::vector<int> live_cleaned;
  std::vector<double> live_trajectory;
  {
    PlanningService service;
    std::string error;
    ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
    ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
    ParseOk(service.HandleLine(UpdateLine(
        "p", "[" +
                 DeltaJson(ProblemDelta::ReplaceDistribution(
                     1, DiscreteDistribution({5.0, 25.0}, {0.5, 0.5}))) +
                 "," + DeltaJson(ProblemDelta::SetCost(2, 0.5)) + "]")));
    ParseOk(service.HandleLine(
        UpdateLine("p", "[" + DeltaJson(ProblemDelta::Clean(3, 13.0)) + "]")));
    JsonValue live = ParseOk(service.HandleLine(line));
    live_cleaned = CleanedOf(live);
    for (const JsonValue& v :
         live.Find("result")->Find("trajectory")->array()) {
      live_trajectory.push_back(v.number());
    }
  }

  PlanningService restarted;
  std::string error;
  ASSERT_TRUE(restarted.EnablePersistence(dir, &error)) << error;
  EXPECT_TRUE(restarted.HasProblem("p"));
  // Re-registering the restored name is still a duplicate.
  std::optional<JsonValue> dup = JsonValue::Parse(restarted.HandleLine(
      RegisterLine("p", data::ProblemToCsv(problem))));
  EXPECT_FALSE(dup->Find("ok")->boolean());

  JsonValue replayed = ParseOk(restarted.HandleLine(line));
  EXPECT_EQ(CleanedOf(replayed), live_cleaned);
  const std::vector<JsonValue>& trajectory =
      replayed.Find("result")->Find("trajectory")->array();
  ASSERT_EQ(trajectory.size(), live_trajectory.size());
  for (size_t i = 0; i < trajectory.size(); ++i) {
    EXPECT_EQ(trajectory[i].number(), live_trajectory[i]);  // bit-exact
  }

  // Updates keep appending at the restored sequence: a second restart
  // replays them too.
  ParseOk(restarted.HandleLine(
      UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 3.0)) + "]")));
  std::vector<int> after_update =
      CleanedOf(ParseOk(restarted.HandleLine(line)));
  PlanningService third;
  ASSERT_TRUE(third.EnablePersistence(dir, &error)) << error;
  EXPECT_EQ(CleanedOf(ParseOk(third.HandleLine(line))), after_update);
  std::filesystem::remove_all(dir);
}

TEST(PlanningService, ChangelogCompactionKeepsRestartsWorking) {
  const std::string dir = TestChangelogDir("compact");
  std::filesystem::remove_all(dir);
  CleaningProblem problem = MakeProblem();
  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  std::vector<int> live_cleaned;
  {
    PlanningService service;
    std::string error;
    ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
    ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
    // Enough single-delta updates to cross the compaction threshold (64).
    for (int i = 0; i < 70; ++i) {
      ParseOk(service.HandleLine(UpdateLine(
          "p", "[" +
                   DeltaJson(ProblemDelta::SetCost(i % 6, 1.0 + 0.01 * i)) +
                   "]")));
    }
    ParseOk(service.HandleLine(UpdateLine(
        "p", "[" +
                 DeltaJson(ProblemDelta::ReplaceDistribution(
                     0, DiscreteDistribution({2.0, 30.0}, {0.5, 0.5}))) +
                 "]")));
    live_cleaned = CleanedOf(ParseOk(service.HandleLine(line)));
    EXPECT_EQ(EpochOf(service, "p"), 71);
  }
  // The log was compacted into the snapshot: far fewer than 71 records.
  {
    std::ifstream log(dir + "/p.log");
    ASSERT_TRUE(log.good());
    int lines = 0;
    std::string unused;
    while (std::getline(log, unused)) ++lines;
    EXPECT_LT(lines, 64);
  }
  PlanningService restarted;
  std::string error;
  ASSERT_TRUE(restarted.EnablePersistence(dir, &error)) << error;
  EXPECT_EQ(CleanedOf(ParseOk(restarted.HandleLine(line))), live_cleaned);
  std::filesystem::remove_all(dir);
}

TEST(PlanningService, PersistenceRefusesACorruptChangelog) {
  const std::string dir = TestChangelogDir("corrupt");
  std::filesystem::remove_all(dir);
  {
    PlanningService service;
    std::string error;
    ASSERT_TRUE(service.EnablePersistence(dir, &error)) << error;
    ParseOk(service.HandleLine(
        RegisterLine("p", data::ProblemToCsv(MakeProblem()))));
    ParseOk(service.HandleLine(
        UpdateLine("p", "[" + DeltaJson(ProblemDelta::SetCost(0, 2.0)) + "]")));
  }
  {
    std::ofstream log(dir + "/p.log", std::ios::app);
    log << "{torn";  // no newline: a crash mid-append
  }
  PlanningService restarted;
  std::string error;
  EXPECT_FALSE(restarted.EnablePersistence(dir, &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

// --- CleaningProblem: planes thread-safety contract ------------------------

// Concurrent first-touch of the lazy planes cache from many threads: the
// per-instance mutex (the bug this PR fixed — the old function-local
// static serialized unrelated problems and left the copy path unguarded)
// must hand every reader the SAME fully built snapshot.  This is the
// TSan job's planes target.
TEST(PlanesContract, ConcurrentLazyBuildYieldsOneSnapshot) {
  constexpr int kThreads = 8;
  for (int round = 0; round < 16; ++round) {
    CleaningProblem problem = MakeProblem(12);
    std::vector<std::shared_ptr<const DistPlanes>> snapshots(kThreads);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ++ready;
        while (ready.load() < kThreads) std::this_thread::yield();
        if (t % 2 == 0) {
          snapshots[t] = problem.planes_ptr();
        } else {
          // The copy constructor snapshots the cache under the same
          // mutex, so copying from a const problem races with nothing.
          // A copy taken before the source's first build legitimately
          // builds its own planes, so only validity is asserted here.
          CleaningProblem copy(problem);
          snapshots[t] = copy.planes_ptr();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_NE(snapshots[t], nullptr);
      if (t % 2 == 0) {
        EXPECT_EQ(snapshots[t], snapshots[0]) << "distinct builds escaped";
      }
      EXPECT_EQ(snapshots[t]->num_objects(), 12);
    }
  }
}

TEST(PlanesContract, MutationKeepsPriorSnapshotsValid) {
  CleaningProblem problem = MakeProblem(5);
  std::shared_ptr<const DistPlanes> before = problem.planes_ptr();
  ASSERT_EQ(before->num_objects(), 5);
  EXPECT_FALSE(before->is_point_mass(0));

  problem.Clean(0, 11.0);  // collapses o0, resets the cache

  // The old snapshot is untouched; the rebuilt one sees the point mass.
  EXPECT_FALSE(before->is_point_mass(0));
  std::shared_ptr<const DistPlanes> after = problem.planes_ptr();
  EXPECT_NE(after, before);
  EXPECT_TRUE(after->is_point_mass(0));
}

// --- EvalEngine: single-writer guard ---------------------------------------

TEST(EngineGuard, NestedCallsFromTheOwnerThreadPass) {
  CleaningProblem problem = MakeProblem();
  LinearQueryFunction query = LinearQueryFunction::FromDense(
      std::vector<double>(problem.size(), 1.0));
  EvalEngine engine(MinVarObjective(query, problem),
                    OptimizeDirection::kMinimize);
  // PlainGreedy funnels through the batch entry points internally — the
  // guard must treat those as nested frames, not violations.
  Selection selection = engine.PlainGreedy(problem.Costs(), 3.0);
  EXPECT_FALSE(selection.cleaned.empty());
  EXPECT_GT(engine.stats().evaluations, 0);
  // And the engine stays claimable afterwards.
  EXPECT_EQ(engine.Evaluate({0}), engine.Evaluate({0}));
}

#ifndef FACTCHECK_TSAN
// A second thread entering the engine mid-call must abort with the
// single-writer diagnostic instead of racing on the memo tables.  (Under
// TSan the death-test fork machinery and the deliberate abort are noise —
// TSan instead proves the fixed paths are race-free.)
TEST(EngineGuardDeathTest, CrossThreadUseAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        std::atomic<bool> inside{false};
        EvalEngine engine(
            [&](const std::vector<int>&) {
              inside.store(true);
              // Hold the engine's API claim open until the process dies.
              for (;;) std::this_thread::yield();
              return 0.0;
            },
            OptimizeDirection::kMinimize);
        std::thread holder([&] { engine.Evaluate({0}); });
        while (!inside.load()) std::this_thread::yield();
        engine.Evaluate({1});  // second thread -> FC_CHECK abort
        holder.join();
      },
      "CHECK failed");
}
#endif  // !FACTCHECK_TSAN

// --- Socket transport -------------------------------------------------------

std::string TestSocketPath(const char* tag) {
  return "/tmp/fc_serve_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketServer, EndToEndRegisterPlanStats) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  SocketServer server(&service, {TestSocketPath("e2e"), /*threads=*/2});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  LineClient client;
  ASSERT_TRUE(client.Connect(server.socket_path(), &error)) << error;
  std::string response;
  ASSERT_TRUE(client.Call(RegisterLine("p", data::ProblemToCsv(problem)),
                          &response, &error))
      << error;
  ParseOk(response);
  ASSERT_TRUE(client.Call(PlanLine("p", "greedy_minvar", 3.0), &response,
                          &error));
  JsonValue plan = ParseOk(response);
  EXPECT_FALSE(CleanedOf(plan).empty());
  ASSERT_TRUE(client.Call("{\"op\":\"stats\"}", &response, &error));
  JsonValue stats = ParseOk(response);
  EXPECT_EQ(stats.Find("stats")->Find("total_requests")->number(), 1.0);
  // A malformed line keeps the connection usable.
  ASSERT_TRUE(client.Call("not json", &response, &error));
  EXPECT_FALSE(JsonValue::Parse(response)->Find("ok")->boolean());
  ASSERT_TRUE(client.Call("{\"op\":\"ping\"}", &response, &error));
  client.Close();
  server.Stop();  // idempotent with the destructor's Stop
}

TEST(SocketServer, ConcurrentConnectionsShareTheWarmEngine) {
  CleaningProblem problem = MakeProblem(8);
  PlanningService service;
  SocketServer server(&service, {TestSocketPath("conc"), /*threads=*/4});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  {
    LineClient setup;
    ASSERT_TRUE(setup.Connect(server.socket_path(), &error)) << error;
    std::string response;
    ASSERT_TRUE(setup.Call(RegisterLine("p", data::ProblemToCsv(problem)),
                           &response, &error));
    ParseOk(response);
  }

  constexpr int kClients = 4;
  constexpr int kCalls = 3;
  const std::string line = PlanLine("p", "greedy_minvar", 3.0);
  std::vector<std::vector<int>> selections(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      std::string client_error, response;
      if (!client.Connect(server.socket_path(), &client_error)) {
        ++failures;
        return;
      }
      for (int r = 0; r < kCalls; ++r) {
        if (!client.Call(line, &response, &client_error)) {
          ++failures;
          return;
        }
        std::optional<JsonValue> parsed = JsonValue::Parse(response);
        if (!parsed.has_value() || !parsed->Find("ok")->boolean()) {
          ++failures;
          return;
        }
        selections[c] = CleanedOf(*parsed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(selections[c], selections[0]);
  }
  EXPECT_EQ(service.total_requests(), kClients * kCalls);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace factcheck
