// Equivalence tier for the engine's incremental-objective path
// (core/incremental.h): every IncrementalObjective must drive the greedy
// to the identical selection — same set, same pick order, same cost, and
// bitwise the same objective trajectory — as the from-scratch batch
// SetObjective path, across pool sizes and lazy modes; the stats must
// show the work moving from full evaluations to O(Δ) probes.  Also the
// collision-path tier for the engine's 64-bit set-signature memo (the
// exact-key fallback must keep the cache sound under a degenerate hash)
// and the stats_out-on-early-exit contract.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "claims/ev_fast.h"
#include "claims/perturbation.h"
#include "core/engine.h"
#include "core/greedy.h"
#include "core/incremental.h"
#include "core/maxpr.h"
#include "core/planner.h"
#include "data/synthetic.h"
#include "dist/mvn.h"
#include "exp/workload_registry.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace factcheck {
namespace {

void ExpectSameSelection(const Selection& a, const Selection& b,
                         const std::string& context) {
  EXPECT_EQ(a.cleaned, b.cleaned) << context;
  EXPECT_EQ(a.order, b.order) << context;
  EXPECT_EQ(a.cost, b.cost) << context;  // bit-equal
}

// One (batch objective, incremental factory) pair plus the instance data
// it closes over.
struct Family {
  std::string name;
  OptimizeDirection direction;
  std::vector<double> costs;
  double budget = 0.0;
  SetObjective batch;
  IncrementalFactory make_incremental;
  // Keep-alive for state captured by reference in the closures.
  std::shared_ptr<void> holder;
};

Family ModularFamily(std::uint64_t seed) {
  const int n = 14;
  Rng rng(seed);
  auto weights = std::make_shared<std::vector<double>>();
  Family f;
  for (int i = 0; i < n; ++i) {
    weights->push_back(rng.Uniform(0.0, 3.0));
    f.costs.push_back(rng.Uniform(0.5, 2.0));
  }
  f.name = "modular";
  f.direction = OptimizeDirection::kMinimize;
  f.budget = 0.4 * n;
  f.batch = [weights](const std::vector<int>& cleaned) {
    std::vector<bool> in(weights->size(), false);
    for (int i : cleaned) in[i] = true;
    double acc = 0.0;
    for (size_t i = 0; i < weights->size(); ++i) {
      if (!in[i]) acc += (*weights)[i];
    }
    return acc;
  };
  f.make_incremental = [weights] { return MakeModularIncremental(*weights); };
  f.holder = weights;
  return f;
}

Family NormalMaxPrFamily(std::uint64_t seed) {
  const int n = 12;
  Rng rng(seed);
  struct State {
    std::unique_ptr<LinearQueryFunction> f;
    std::vector<double> means, stddevs, current;
  };
  auto state = std::make_shared<State>();
  std::vector<int> refs;
  std::vector<double> coeffs;
  Family f;
  for (int i = 0; i < n; ++i) {
    state->means.push_back(rng.Uniform(40.0, 60.0));
    state->current.push_back(state->means.back() + rng.Uniform(-4.0, 4.0));
    state->stddevs.push_back(rng.Uniform(0.5, 4.0));
    f.costs.push_back(rng.Uniform(0.5, 2.0));
    if (i % 3 != 2) {  // leave some objects unreferenced (coefficient 0)
      refs.push_back(i);
      coeffs.push_back(rng.Uniform(-1.5, 1.5));
    }
  }
  state->f = std::make_unique<LinearQueryFunction>(refs, coeffs);
  const double tau = 2.0;
  f.name = "normal_maxpr";
  f.direction = OptimizeDirection::kMaximize;
  f.budget = 0.5 * n;
  f.batch = MaxPrNormalObjective(*state->f, state->means, state->stddevs,
                                 state->current, tau);
  f.make_incremental = [state, tau, n] {
    return MakeNormalMaxPrIncremental(state->f->DenseWeights(n),
                                      state->means, state->stddevs,
                                      state->current, tau);
  };
  f.holder = state;
  return f;
}

Family MvnFamily(std::uint64_t seed) {
  const int n = 10;
  Rng rng(seed);
  struct State {
    std::unique_ptr<MultivariateNormal> model;
    std::vector<double> a;
  };
  auto state = std::make_shared<State>();
  Vector mean(n, 0.0), stddevs(n);
  Family f;
  for (int i = 0; i < n; ++i) {
    stddevs[i] = rng.Uniform(0.5, 3.0);
    state->a.push_back(rng.Uniform(-1.0, 1.0));
    f.costs.push_back(rng.Uniform(0.5, 2.0));
  }
  state->model = std::make_unique<MultivariateNormal>(
      mean, GeometricDecayCovariance(stddevs, 0.7));
  f.name = "mvn_conditional";
  f.direction = OptimizeDirection::kMinimize;
  f.budget = 0.45 * n;
  f.batch = [state](const std::vector<int>& cleaned) {
    return state->model->ExpectedConditionalVariance(state->a, cleaned);
  };
  f.make_incremental = [state] {
    return MakeConditionalVarianceIncremental(*state->model, state->a);
  };
  f.holder = state;
  return f;
}

Family ClaimsFamily(std::uint64_t seed) {
  const int n = 12;
  struct State {
    CleaningProblem problem;
    PerturbationSet context;
    std::unique_ptr<ClaimEvEvaluator> evaluator;
  };
  auto state = std::make_shared<State>();
  state->problem =
      data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, seed,
                          {.size = n, .min_support = 2, .max_support = 3});
  state->context = SlidingWindowSumPerturbations(n, 3, 0, 1.5);
  double reference =
      state->context.original.Evaluate(state->problem.CurrentValues());
  state->evaluator = std::make_unique<ClaimEvEvaluator>(
      &state->problem, &state->context, QualityMeasure::kDuplicity,
      reference);
  Family f;
  f.name = "claims_thm38";
  f.direction = OptimizeDirection::kMinimize;
  f.costs = state->problem.Costs();
  f.budget = 0.45 * state->problem.TotalCost();
  f.batch = [state](const std::vector<int>& cleaned) {
    return state->evaluator->EV(cleaned);
  };
  f.make_incremental = [state] {
    return state->evaluator->MakeIncremental();
  };
  f.holder = state;
  return f;
}

std::vector<Family> AllFamilies(std::uint64_t seed) {
  return {ModularFamily(seed), NormalMaxPrFamily(seed), MvnFamily(seed),
          ClaimsFamily(seed)};
}

// --- Value / probe / commit consistency -----------------------------------

TEST(IncrementalConsistency, ValueProbeAndCommitMatchBatchObjective) {
  for (std::uint64_t seed : {3u, 11u}) {
    for (Family& family : AllFamilies(seed)) {
      SCOPED_TRACE(family.name);
      const int n = static_cast<int>(family.costs.size());
      std::unique_ptr<IncrementalObjective> inc = family.make_incremental();
      Rng rng(seed + 17);
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<int> set =
            rng.SampleWithoutReplacement(n, rng.UniformInt(0, n - 2));
        inc->Reset(set);
        double batch_value = family.batch([&] {
          std::vector<int> canonical = set;
          std::sort(canonical.begin(), canonical.end());
          return canonical;
        }());
        double scale = 1.0 + std::abs(batch_value);
        EXPECT_NEAR(inc->Value(), batch_value, 1e-9 * scale);
        // Probe every absent object against a from-scratch evaluation.
        std::vector<bool> in(n, false);
        for (int i : set) in[i] = true;
        for (int i = 0; i < n; ++i) {
          if (in[i]) continue;
          std::vector<int> with = set;
          with.push_back(i);
          std::sort(with.begin(), with.end());
          double probed = inc->Value() + inc->ProbeGain(i);
          double exact = family.batch(with);
          EXPECT_NEAR(probed, exact, 1e-9 * (1.0 + std::abs(exact)))
              << "object " << i;
        }
      }
      // Commit replay: committing one-by-one must land where Reset lands.
      inc->Reset({});
      std::vector<int> order = rng.SampleWithoutReplacement(n, n / 2);
      for (int i : order) inc->Commit(i);
      double committed = inc->Value();
      inc->Reset(order);
      EXPECT_NEAR(committed, inc->Value(),
                  1e-9 * (1.0 + std::abs(committed)));
    }
  }
}

// --- Engine equivalence: incremental path vs batch path -------------------

Selection RunEngine(const Family& family, bool incremental, bool lazy,
                    int pool_threads, EngineStats* stats) {
  GreedyOptions options;
  options.lazy = lazy;
  options.stats_out = stats;
  std::unique_ptr<ThreadPool> pool;
  if (pool_threads > 0) {
    pool = std::make_unique<ThreadPool>(pool_threads);
    options.pool = pool.get();
  }
  std::unique_ptr<IncrementalObjective> inc;
  if (incremental) {
    inc = family.make_incremental();
    options.incremental = inc.get();
  }
  return family.direction == OptimizeDirection::kMinimize
             ? AdaptiveGreedyMinimize(family.costs, family.budget,
                                      family.batch, options)
             : AdaptiveGreedyMaximize(family.costs, family.budget,
                                      family.batch, options);
}

TEST(IncrementalEngineEquivalence, SameSelectionAcrossPoolsAndLazyModes) {
  for (std::uint64_t seed : {2u, 7u, 19u}) {
    for (Family& family : AllFamilies(seed)) {
      for (bool lazy : {false, true}) {
        // Batch reference at pool size 0; the engine guarantees pool-size
        // bit-stability, so one batch reference per lazy mode suffices.
        EngineStats batch_stats;
        Selection batch =
            RunEngine(family, /*incremental=*/false, lazy, 0, &batch_stats);
        for (int pool_threads : {0, 1, 4}) {
          SCOPED_TRACE(family.name + (lazy ? " lazy" : " plain") +
                       " pool=" + std::to_string(pool_threads) + " seed=" +
                       std::to_string(seed));
          EngineStats inc_stats;
          Selection inc = RunEngine(family, /*incremental=*/true, lazy,
                                    pool_threads, &inc_stats);
          ExpectSameSelection(batch, inc, family.name);
          // The work must have moved from full evaluations to probes:
          // one Reset-evaluation, everything else O(Δ).
          EXPECT_EQ(inc_stats.evaluations, 1);
          EXPECT_GT(inc_stats.probes, 0);
          EXPECT_LE(inc_stats.commits, inc_stats.probes);
          EXPECT_GT(batch_stats.evaluations, inc_stats.evaluations);
          // Identical selections imply bitwise-identical objective
          // trajectories; pin it explicitly through the batch evaluator.
          std::vector<int> prefix;
          for (size_t k = 0; k < batch.order.size(); ++k) {
            prefix.push_back(batch.order[k]);
            std::vector<int> canonical = prefix;
            std::sort(canonical.begin(), canonical.end());
            std::vector<int> other(inc.order.begin(),
                                   inc.order.begin() + k + 1);
            std::sort(other.begin(), other.end());
            EXPECT_EQ(family.batch(canonical), family.batch(other));
          }
        }
      }
    }
  }
}

// --- Workload-level equivalence through the Planner -----------------------

// Every registered workload that ships an incremental factory must select
// identically with and without it, for threads in {1, 4} x lazy on/off,
// including the (bitwise) objective trajectory the Planner recomputes
// through the workload metric.
TEST(WorkloadIncrementalEquivalence, AllRegisteredWorkloadsMatchBatchPath) {
  using exp::Workload;
  using exp::WorkloadOptions;
  using exp::WorkloadRegistry;
  int covered = 0;
  for (const auto* entry : WorkloadRegistry::Global().Sorted()) {
    SCOPED_TRACE(entry->name);
    WorkloadOptions options;
    options.size = 48;  // keep the synthetic families test-sized
    Workload w = entry->build(options);
    w.name = entry->name;
    PlanRequest request = w.MakeRequest(0.3 * w.TotalCost());
    if (request.custom_incremental == nullptr) continue;
    ASSERT_EQ(w.objective, ObjectiveKind::kMinVar);
    ++covered;
    request.with_trajectory = true;
    Planner planner(w.registry());
    for (bool lazy : {false, true}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " lazy=" + std::to_string(lazy));
        request.engine.threads = threads;
        request.engine.lazy = lazy;
        PlanResult with_inc = planner.Plan(request, "greedy_minvar");
        PlanRequest batch_request = request;
        batch_request.custom_incremental = nullptr;
        PlanResult batch = planner.Plan(batch_request, "greedy_minvar");
        ExpectSameSelection(batch.selection, with_inc.selection,
                            entry->name);
        ASSERT_EQ(batch.trajectory.size(), with_inc.trajectory.size());
        for (size_t k = 0; k < batch.trajectory.size(); ++k) {
          EXPECT_EQ(batch.trajectory[k], with_inc.trajectory[k]);  // bitwise
        }
        EXPECT_EQ(with_inc.stats.evaluations, 1);
        EXPECT_GT(with_inc.stats.probes, 0);
        EXPECT_GT(with_inc.stats.commits, 0);
        EXPECT_EQ(batch.stats.probes, 0);
        EXPECT_GT(batch.stats.evaluations, with_inc.stats.evaluations);
      }
    }
  }
  // The catalogue must actually exercise the path: the fairness, claims,
  // dependency, and engine-gate workloads all ship factories.
  EXPECT_GE(covered, 10);
}

// The incremental factory mirrors the workload METRIC; algorithms that
// greedy-drive a different objective — the Monte Carlo estimators build
// their own sampling objective — must not inherit it, or they would
// silently become the exact greedy.
TEST(WorkloadIncrementalEquivalence, MonteCarloKeepsItsOwnObjective) {
  using exp::Workload;
  using exp::WorkloadRegistry;
  Workload w = WorkloadRegistry::Global().Build("adoptions_fairness");
  PlanRequest request = w.MakeRequest(0.3 * w.TotalCost());
  ASSERT_NE(request.custom_incremental, nullptr);
  request.engine.mc_samples = 16;
  request.engine.mc_inner = 8;
  Planner planner(w.registry());
  PlanResult mc = planner.Plan(request, "mc_greedy_minvar");
  // The Monte Carlo objective must actually have been evaluated: many
  // full evaluations, no incremental probes.
  EXPECT_GT(mc.stats.evaluations, 1);
  EXPECT_EQ(mc.stats.probes, 0);
  EXPECT_EQ(mc.stats.commits, 0);
}

// --- Signature-collision fallback -----------------------------------------

TEST(SignatureCollision, DegenerateHashStaysSoundThroughExactKeyFallback) {
  int calls = 0;
  SetObjective objective = [&calls](const std::vector<int>& t) {
    ++calls;
    double acc = 1.0;
    for (int i : t) acc += (i + 1) * (i + 1);
    return acc;
  };
  EvalEngine engine(objective, OptimizeDirection::kMinimize);
  engine.UseDegenerateSignatureForTest();
  // Distinct sets, all colliding on the degenerate signature.
  EXPECT_EQ(engine.Evaluate({0, 1}), 1.0 + 1.0 + 4.0);
  EXPECT_EQ(engine.Evaluate({2}), 1.0 + 9.0);
  EXPECT_EQ(engine.Evaluate({0, 3}), 1.0 + 1.0 + 16.0);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(engine.stats().evaluations, 3);
  // Re-querying must hit the memo (primary slot or exact-key fallback).
  EXPECT_EQ(engine.Evaluate({0, 1}), 6.0);
  EXPECT_EQ(engine.Evaluate({2}), 10.0);
  EXPECT_EQ(engine.Evaluate({1, 0, 0}), 6.0);  // canonicalization
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(engine.stats().cache_hits, 3);
  EXPECT_GT(engine.stats().key_bytes_hashed, 0);
}

TEST(SignatureCollision, GreedySelectsAndCountsIdenticallyUnderCollisions) {
  Family family = ModularFamily(23);
  for (bool lazy : {false, true}) {
    SCOPED_TRACE(lazy ? "lazy" : "plain");
    EvalEngine normal(family.batch, family.direction);
    EvalEngine degenerate(family.batch, family.direction);
    degenerate.UseDegenerateSignatureForTest();
    GreedyOptions options;
    options.lazy = lazy;
    Selection a = lazy ? normal.LazyGreedy(family.costs, family.budget)
                       : normal.PlainGreedy(family.costs, family.budget);
    Selection b = lazy
                      ? degenerate.LazyGreedy(family.costs, family.budget)
                      : degenerate.PlainGreedy(family.costs, family.budget);
    ExpectSameSelection(a, b, "degenerate signature");
    // The fallback must not change what is memoized, only where.
    EXPECT_EQ(normal.stats().evaluations, degenerate.stats().evaluations);
    EXPECT_EQ(normal.stats().cache_hits, degenerate.stats().cache_hits);
    EXPECT_GT(degenerate.stats().key_bytes_hashed,
              normal.stats().key_bytes_hashed);
  }
}

// --- stats_out population on early exits ----------------------------------

EngineStats SentinelStats() {
  EngineStats stats;
  stats.evaluations = -7;
  stats.cache_hits = -7;
  stats.probes = -7;
  stats.commits = -7;
  stats.key_bytes_hashed = -7;
  return stats;
}

TEST(StatsOut, PopulatedWhenNothingIsAffordable) {
  Family family = ModularFamily(5);
  for (bool incremental : {false, true}) {
    SCOPED_TRACE(incremental ? "incremental" : "batch");
    EngineStats stats = SentinelStats();
    GreedyOptions options;
    options.stats_out = &stats;
    std::unique_ptr<IncrementalObjective> inc;
    if (incremental) {
      inc = family.make_incremental();
      options.incremental = inc.get();
    }
    Selection sel =
        AdaptiveGreedyMinimize(family.costs, /*budget=*/0.0, family.batch,
                               options);
    EXPECT_TRUE(sel.cleaned.empty());
    // The empty-candidate early break still reports: one evaluation for
    // the empty set, nothing else.
    EXPECT_EQ(stats.evaluations, 1);
    EXPECT_EQ(stats.probes, 0);
    EXPECT_EQ(stats.commits, 0);
    EXPECT_GE(stats.key_bytes_hashed, 0);
  }
}

TEST(StatsOut, PopulatedOnMaximizeNoGainEarlyBreak) {
  const int n = 6;
  std::vector<double> costs(n, 1.0);
  SetObjective constant = [](const std::vector<int>&) { return 0.25; };
  for (bool lazy : {false, true}) {
    SCOPED_TRACE(lazy ? "lazy" : "plain");
    EngineStats stats = SentinelStats();
    GreedyOptions options;
    options.lazy = lazy;
    options.stats_out = &stats;
    Selection sel =
        AdaptiveGreedyMaximize(costs, /*budget=*/100.0, constant, options);
    EXPECT_TRUE(sel.cleaned.empty());  // no candidate improves the constant
    EXPECT_EQ(stats.evaluations, n + 1);  // empty set + the first round
    EXPECT_EQ(stats.probes, 0);
    EXPECT_EQ(stats.commits, 0);
  }
}

TEST(StatsOut, ClaimsGreedyReportsOnEmptyBudget) {
  CleaningProblem problem =
      data::MakeSynthetic(data::SyntheticFamily::kUniformRandom, 31,
                          {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = SlidingWindowSumPerturbations(12, 3, 0, 1.5);
  double reference = context.original.Evaluate(problem.CurrentValues());
  ClaimEvEvaluator evaluator(&problem, &context, QualityMeasure::kDuplicity,
                             reference);
  EngineStats stats = SentinelStats();
  GreedyOptions options;
  options.stats_out = &stats;
  Selection sel = evaluator.GreedyMinVar(/*budget=*/0.0, options);
  EXPECT_TRUE(sel.cleaned.empty());
  EXPECT_GT(stats.evaluations, 0);  // the initial term pass
  EXPECT_GT(stats.probes, 0);       // the initial benefit pass
  EXPECT_EQ(stats.commits, 0);
  EXPECT_EQ(stats.cache_hits, 0);  // fully assigned, no sentinel residue
  EXPECT_EQ(stats.key_bytes_hashed, 0);
}

}  // namespace
}  // namespace factcheck
