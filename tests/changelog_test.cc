// The durable-update half of the streaming-delta subsystem
// (serve/changelog.h): delta <-> JSON codec, snapshot codec, the
// fail-closed all-or-nothing replay, and the filesystem store with its
// snapshot-compaction behaviour.  Carries the `stress` label so the
// sanitizer legs replay the corruption cases under ASan/UBSan and TSan.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/delta.h"
#include "core/problem.h"
#include "data/problem_io.h"
#include "serve/changelog.h"
#include "serve/json_value.h"
#include "util/json.h"

namespace factcheck {
namespace serve {
namespace {

CleaningProblem MakeProblem(int n = 5) {
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.5 * (i % 2);
    double mid = 10.0 + i;
    object.dist =
        DiscreteDistribution({mid - 1.0, mid, mid + 1.5}, {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

std::string DeltaJson(const ProblemDelta& delta) {
  JsonWriter writer;
  WriteDeltaJson(delta, writer);
  return writer.str();
}

ProblemDelta RoundTrip(const ProblemDelta& delta) {
  std::string text = DeltaJson(delta);
  std::string error;
  std::optional<JsonValue> json = JsonValue::Parse(text, &error);
  EXPECT_TRUE(json.has_value()) << error << " in " << text;
  ProblemDelta out;
  EXPECT_TRUE(DeltaFromJson(*json, &out, &error)) << error << " in " << text;
  return out;
}

// A scratch directory per test, removed on scope exit.
struct TempDir {
  explicit TempDir(const char* tag)
      : path("/tmp/fc_changelog_" + std::string(tag) + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// --- Delta <-> JSON ---------------------------------------------------------

TEST(DeltaJson, EveryKindRoundTrips) {
  ProblemDelta replace = RoundTrip(ProblemDelta::ReplaceDistribution(
      3, DiscreteDistribution({1.5, 2.25}, {0.375, 0.625})));
  EXPECT_EQ(replace.kind, DeltaKind::kReplaceDistribution);
  EXPECT_EQ(replace.object, 3);
  ASSERT_EQ(replace.dist.support_size(), 2);
  EXPECT_EQ(replace.dist.value(1), 2.25);   // bit-exact through the codec
  EXPECT_EQ(replace.dist.prob(0), 0.375);

  UncertainObject object;
  object.label = "added \"x\", y";  // exercises JSON string escaping
  object.current_value = -4.5;
  object.cost = 2.0;
  object.dist = DiscreteDistribution({3.0, 5.0}, {0.25, 0.75});
  ProblemDelta add = RoundTrip(ProblemDelta::AddObject(object));
  EXPECT_EQ(add.kind, DeltaKind::kAddObject);
  EXPECT_EQ(add.added.label, object.label);
  EXPECT_EQ(add.added.current_value, -4.5);
  EXPECT_EQ(add.added.cost, 2.0);
  ASSERT_EQ(add.added.dist.support_size(), 2);
  EXPECT_EQ(add.added.dist.value(0), 3.0);

  ProblemDelta remove = RoundTrip(ProblemDelta::RemoveObject(7));
  EXPECT_EQ(remove.kind, DeltaKind::kRemoveObject);
  EXPECT_EQ(remove.object, 7);

  ProblemDelta cost = RoundTrip(ProblemDelta::SetCost(2, 1.5));
  EXPECT_EQ(cost.kind, DeltaKind::kSetCost);
  EXPECT_EQ(cost.object, 2);
  EXPECT_EQ(cost.value, 1.5);

  ProblemDelta value = RoundTrip(ProblemDelta::SetCurrentValue(0, 9.0));
  EXPECT_EQ(value.kind, DeltaKind::kSetCurrentValue);
  EXPECT_EQ(value.value, 9.0);

  ProblemDelta clean = RoundTrip(ProblemDelta::Clean(4, 3.125));
  EXPECT_EQ(clean.kind, DeltaKind::kClean);
  EXPECT_EQ(clean.object, 4);
  EXPECT_EQ(clean.value, 3.125);
}

TEST(DeltaJson, RejectsMalformedInputWithoutAborting) {
  const char* cases[] = {
      "[]",                                       // not an object
      "{\"object\":1}",                           // no kind
      "{\"kind\":\"bogus\",\"object\":1}",        // unknown kind
      "{\"kind\":\"set_cost\",\"object\":1}",     // missing cost
      "{\"kind\":\"set_cost\",\"cost\":1}",       // missing object
      "{\"kind\":\"set_cost\",\"object\":-1,\"cost\":1}",   // negative index
      "{\"kind\":\"set_cost\",\"object\":1.5,\"cost\":1}",  // fractional
      "{\"kind\":\"clean\",\"object\":0}",        // missing value
      "{\"kind\":\"remove_object\"}",             // missing object
      // Distribution payload defects: fail closed here, never reach the
      // aborting DiscreteDistribution constructor.
      "{\"kind\":\"replace_dist\",\"object\":0,\"support\":[],\"probs\":[]}",
      "{\"kind\":\"replace_dist\",\"object\":0,"
      "\"support\":[1,2],\"probs\":[1]}",          // length mismatch
      "{\"kind\":\"replace_dist\",\"object\":0,"
      "\"support\":[1,2],\"probs\":[-0.5,1.5]}",   // negative probability
      "{\"kind\":\"replace_dist\",\"object\":0,"
      "\"support\":[1,2],\"probs\":[0,0]}",        // zero total mass
      "{\"kind\":\"replace_dist\",\"object\":0,"
      "\"support\":[1,\"x\"],\"probs\":[0.5,0.5]}",  // non-number atom
      "{\"kind\":\"add_object\",\"label\":\"x\",\"current\":1,\"cost\":1,"
      "\"support\":[1],\"probs\":[0]}",            // added dist, zero mass
  };
  for (const char* text : cases) {
    std::optional<JsonValue> json = JsonValue::Parse(text);
    ASSERT_TRUE(json.has_value()) << text;
    ProblemDelta delta;
    std::string error;
    EXPECT_FALSE(DeltaFromJson(*json, &delta, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// --- Snapshot codec ---------------------------------------------------------

TEST(SnapshotCodec, RoundTripsProblemQueryAndSeq) {
  CleaningProblem problem = MakeProblem(4);
  std::vector<int> refs = {0, 2, 3};
  std::vector<double> coeffs = {1.0, -0.5, 2.0};
  std::string text = EncodeSnapshot(problem, refs, coeffs, 17);
  EXPECT_EQ(text.find('\n'), std::string::npos)
      << "snapshots must encode the CSV's newlines, not contain them";

  std::int64_t seq = 0;
  std::string csv, error;
  std::vector<int> out_refs;
  std::vector<double> out_coeffs;
  ASSERT_TRUE(DecodeSnapshot(text, &seq, &csv, &out_refs, &out_coeffs, &error))
      << error;
  EXPECT_EQ(seq, 17);
  EXPECT_EQ(out_refs, refs);
  EXPECT_EQ(out_coeffs, coeffs);
  std::optional<CleaningProblem> restored = data::ProblemFromCsv(csv, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(data::ProblemToCsv(*restored), data::ProblemToCsv(problem));
}

TEST(SnapshotCodec, RejectsMalformedDocuments) {
  const char* cases[] = {
      "not json",
      "[]",
      "{\"refs\":[],\"coeffs\":[],\"csv\":\"x\"}",            // no seq
      "{\"seq\":-1,\"refs\":[],\"coeffs\":[],\"csv\":\"x\"}",  // bad seq
      "{\"seq\":1,\"coeffs\":[],\"csv\":\"x\"}",               // no refs
      "{\"seq\":1,\"refs\":[0.5],\"coeffs\":[1],\"csv\":\"x\"}",
      "{\"seq\":1,\"refs\":[0],\"coeffs\":[1]}",               // no csv
  };
  for (const char* text : cases) {
    std::int64_t seq;
    std::string csv, error;
    std::vector<int> refs;
    std::vector<double> coeffs;
    EXPECT_FALSE(DecodeSnapshot(text, &seq, &csv, &refs, &coeffs, &error))
        << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// --- Replay -----------------------------------------------------------------

std::vector<ProblemDelta> SampleDeltas() {
  return {
      ProblemDelta::SetCost(1, 3.5),
      ProblemDelta::ReplaceDistribution(
          0, DiscreteDistribution({1.0, 2.0}, {0.5, 0.5})),
      ProblemDelta::Clean(3, 12.5),
  };
}

std::string LogText(const std::vector<ProblemDelta>& deltas,
                    std::int64_t first_seq) {
  std::string log;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    log += EncodeLogRecord(first_seq + static_cast<std::int64_t>(i),
                           deltas[i]);
    log += "\n";
  }
  return log;
}

TEST(Replay, AppliesRecordsInOrder) {
  CleaningProblem problem = MakeProblem();
  CleaningProblem oracle = problem;
  for (const ProblemDelta& delta : SampleDeltas()) oracle.Apply(delta);

  std::int64_t last_seq = 0;
  std::string error;
  ASSERT_TRUE(ReplayChangelog(LogText(SampleDeltas(), 1), 0, &problem,
                              &last_seq, &error))
      << error;
  EXPECT_EQ(last_seq, 3);
  EXPECT_EQ(data::ProblemToCsv(problem), data::ProblemToCsv(oracle));
}

TEST(Replay, EmptyLogIsANoOp) {
  CleaningProblem problem = MakeProblem();
  std::int64_t last_seq = -1;
  std::string error;
  ASSERT_TRUE(ReplayChangelog("", 5, &problem, &last_seq, &error)) << error;
  EXPECT_EQ(last_seq, 5);
  EXPECT_EQ(problem.epoch(), 0u);
}

TEST(Replay, SkipsRecordsAtOrBelowTheSnapshotSeq) {
  // The compaction crash window: a snapshot at seq 2 with the old records
  // still in the log.  Only seq 3 may apply.
  CleaningProblem problem = MakeProblem();
  CleaningProblem oracle = problem;
  oracle.Apply(SampleDeltas()[2]);

  std::int64_t last_seq = 0;
  std::string error;
  ASSERT_TRUE(ReplayChangelog(LogText(SampleDeltas(), 1), 2, &problem,
                              &last_seq, &error))
      << error;
  EXPECT_EQ(last_seq, 3);
  EXPECT_EQ(data::ProblemToCsv(problem), data::ProblemToCsv(oracle));
}

TEST(Replay, FailsClosedAndLeavesTheProblemUntouched) {
  const std::string good = LogText(SampleDeltas(), 1);
  struct Case {
    const char* name;
    std::string log;
  };
  std::vector<Case> cases;
  // Torn final line: crash mid-append left no trailing newline.
  cases.push_back({"torn final line", good.substr(0, good.size() - 5)});
  // A line that is not valid JSON.
  cases.push_back({"malformed line", good + "{half\n"});
  // Duplicated sequence number.
  cases.push_back(
      {"duplicate seq",
       good + EncodeLogRecord(3, ProblemDelta::SetCost(0, 2.0)) + "\n"});
  // Out-of-order sequence number.
  cases.push_back(
      {"out of order",
       good + EncodeLogRecord(2, ProblemDelta::SetCost(0, 2.0)) + "\n"});
  // Gap in the applied portion.
  cases.push_back(
      {"gap", good + EncodeLogRecord(9, ProblemDelta::SetCost(0, 2.0)) + "\n"});
  // A structurally invalid delta (object out of range for the problem).
  cases.push_back(
      {"invalid delta",
       good + EncodeLogRecord(4, ProblemDelta::SetCost(99, 2.0)) + "\n"});
  // Interior removal (index renumbering hazard).
  cases.push_back(
      {"interior removal",
       good + EncodeLogRecord(4, ProblemDelta::RemoveObject(0)) + "\n"});

  for (const Case& c : cases) {
    CleaningProblem problem = MakeProblem();
    const std::string before = data::ProblemToCsv(problem);
    std::int64_t last_seq = 0;
    std::string error;
    EXPECT_FALSE(
        ReplayChangelog(c.log, 0, &problem, &last_seq, &error))
        << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
    // All-or-nothing: even the valid prefix was not applied.
    EXPECT_EQ(data::ProblemToCsv(problem), before) << c.name;
    EXPECT_EQ(problem.epoch(), 0u) << c.name;
  }
}

// --- ChangelogStore ---------------------------------------------------------

TEST(ChangelogStore, ValidNameRestrictsFileStems) {
  EXPECT_TRUE(ChangelogStore::ValidName("p"));
  EXPECT_TRUE(ChangelogStore::ValidName("prob_1.v2-final"));
  EXPECT_FALSE(ChangelogStore::ValidName(""));
  EXPECT_FALSE(ChangelogStore::ValidName(".hidden"));
  EXPECT_FALSE(ChangelogStore::ValidName("a/b"));
  EXPECT_FALSE(ChangelogStore::ValidName("a b"));
  EXPECT_FALSE(ChangelogStore::ValidName("..\\up"));
  EXPECT_FALSE(ChangelogStore::ValidName(std::string(201, 'a')));
}

TEST(ChangelogStore, SaveAppendLoadRoundTrips) {
  TempDir dir("roundtrip");
  ChangelogStore store(dir.path);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;

  CleaningProblem problem = MakeProblem(3);
  const std::string snap_b = EncodeSnapshot(problem, {0, 1}, {1.0, 1.0}, 0);
  const std::string snap_a = EncodeSnapshot(problem, {2}, {2.0}, 4);
  ASSERT_TRUE(store.SaveSnapshot("beta", snap_b, &error)) << error;
  ASSERT_TRUE(store.SaveSnapshot("alpha", snap_a, &error)) << error;
  const std::string rec1 = EncodeLogRecord(1, ProblemDelta::SetCost(0, 2.0));
  const std::string rec2 = EncodeLogRecord(2, ProblemDelta::Clean(1, 5.0));
  ASSERT_TRUE(store.AppendRecord("beta", rec1, &error)) << error;
  ASSERT_TRUE(store.AppendRecord("beta", rec2, &error)) << error;

  std::vector<ChangelogStore::LoadedProblem> loaded;
  ASSERT_TRUE(store.LoadAll(&loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "alpha");  // deterministic name order
  EXPECT_EQ(loaded[1].name, "beta");
  // SaveSnapshot writes the document plus a trailing newline; Parse skips
  // trailing whitespace, so decoders never see the difference.
  EXPECT_EQ(loaded[0].snapshot, snap_a + "\n");
  EXPECT_EQ(loaded[0].log, "");
  EXPECT_EQ(loaded[1].snapshot, snap_b + "\n");
  EXPECT_EQ(loaded[1].log, rec1 + "\n" + rec2 + "\n");
}

TEST(ChangelogStore, CompactionTruncatesTheLog) {
  TempDir dir("compact");
  ChangelogStore store(dir.path);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  CleaningProblem problem = MakeProblem(3);
  ASSERT_TRUE(store.SaveSnapshot(
      "p", EncodeSnapshot(problem, {}, {}, 0), &error))
      << error;
  ASSERT_TRUE(store.AppendRecord(
      "p", EncodeLogRecord(1, ProblemDelta::SetCost(0, 2.0)), &error));

  // Compaction: a fresh snapshot at the log head replaces the log.
  problem.Apply(ProblemDelta::SetCost(0, 2.0));
  ASSERT_TRUE(store.SaveSnapshot(
      "p", EncodeSnapshot(problem, {}, {}, 1), &error))
      << error;
  std::vector<ChangelogStore::LoadedProblem> loaded;
  ASSERT_TRUE(store.LoadAll(&loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].log, "");
  std::int64_t seq;
  std::string csv;
  std::vector<int> refs;
  std::vector<double> coeffs;
  ASSERT_TRUE(
      DecodeSnapshot(loaded[0].snapshot, &seq, &csv, &refs, &coeffs, &error));
  EXPECT_EQ(seq, 1);
}

TEST(ChangelogStore, OrphanedLogIsAnError) {
  TempDir dir("orphan");
  ChangelogStore store(dir.path);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  {
    std::ofstream out(dir.path + "/ghost.log");
    out << EncodeLogRecord(1, ProblemDelta::SetCost(0, 2.0)) << "\n";
  }
  std::vector<ChangelogStore::LoadedProblem> loaded;
  EXPECT_FALSE(store.LoadAll(&loaded, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos) << error;
}

TEST(ChangelogStore, InitFailsOnAFileInTheWay) {
  TempDir dir("blocked");
  {
    std::ofstream out(dir.path);  // a FILE at the directory path
    out << "x";
  }
  ChangelogStore store(dir.path);
  std::string error;
  EXPECT_FALSE(store.Init(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace serve
}  // namespace factcheck
