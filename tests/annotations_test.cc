// Tests for src/util/annotations.h: the fc::Mutex / fc::MutexLock /
// fc::CondVar wrappers and the FC_* capability macros.
//
// Two things are under test.  (1) Runtime semantics: the wrappers are
// real locks — mutual exclusion, TryLock contention, condition-variable
// handoff.  (2) Compile-time portability: this file uses every macro the
// project's annotated classes use, so building the suite on GCC (macros
// expand to nothing) and on Clang (full thread-safety analysis under
// -Werror=thread-safety) proves both paths accept the vocabulary.  The
// matching *negative* check — that Clang actually rejects an unguarded
// access — is the try_compile gate in CMakeLists.txt over
// tests/negative/unguarded_access.cc.

#include "util/annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

// A guarded counter exercising the field + function annotation surface:
// GUARDED_BY data, REQUIRES/EXCLUDES/ACQUIRE/RELEASE contracts, and a
// capability-typed member.
class GuardedCounter {
 public:
  void Increment() FC_EXCLUDES(mu_) {
    fc::MutexLock lock(&mu_);
    ++value_;
  }

  void IncrementLocked() FC_REQUIRES(mu_) { ++value_; }

  void Lock() FC_ACQUIRE(mu_) { mu_.Lock(); }
  void Unlock() FC_RELEASE(mu_) { mu_.Unlock(); }

  int value() const FC_EXCLUDES(mu_) {
    fc::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable fc::Mutex mu_;
  int value_ FC_GUARDED_BY(mu_) = 0;
};

TEST(Annotations, MutexLockProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(Annotations, RequiresContractWorksWithManualAcquire) {
  GuardedCounter counter;
  counter.Lock();
  counter.IncrementLocked();
  counter.IncrementLocked();
  counter.Unlock();
  EXPECT_EQ(counter.value(), 2);
}

TEST(Annotations, TryLockReportsContention) {
  fc::Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must be refused while we hold the lock; probe from
  // another thread because relocking a held std::mutex from the owning
  // thread is undefined.
  bool second = true;
  std::thread probe([&mu, &second] {
    second = mu.TryLock();
    if (second) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

// The ThreadPool wait idiom: a manual predicate loop around CondVar::Wait
// with the guarded state read inside the MutexLock scope.
class Gate {
 public:
  void Open() FC_EXCLUDES(mu_) {
    {
      fc::MutexLock lock(&mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }

  void Await() FC_EXCLUDES(mu_) {
    fc::MutexLock lock(&mu_);
    while (!open_) cv_.Wait(&mu_);
  }

 private:
  fc::Mutex mu_;
  fc::CondVar cv_;
  bool open_ FC_GUARDED_BY(mu_) = false;
};

TEST(Annotations, CondVarWakesAllWaiters) {
  Gate gate;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&gate] { gate.Await(); });
  }
  gate.Open();
  for (std::thread& t : waiters) t.join();  // hangs = failure (test timeout)
  SUCCEED();
}

// FC_PT_GUARDED_BY, FC_ACQUIRED_AFTER, and FC_RETURN_CAPABILITY are the
// remaining macros the annotated classes may grow into; instantiating
// them here keeps both compiler paths honest about the whole vocabulary.
class VocabularyCheck {
 public:
  fc::Mutex& mu() FC_RETURN_CAPABILITY(mu_) { return mu_; }
  void SetBoth() FC_EXCLUDES(mu_, inner_) {
    fc::MutexLock outer(&mu_);
    fc::MutexLock inner(&inner_);
    *heap_flag_ = true;
    flag_ = true;
  }

 private:
  fc::Mutex mu_;
  fc::Mutex inner_ FC_ACQUIRED_AFTER(mu_);
  bool flag_ FC_GUARDED_BY(inner_) = false;
  std::unique_ptr<bool> heap_flag_ FC_PT_GUARDED_BY(mu_) =
      std::make_unique<bool>(false);
};

TEST(Annotations, VocabularyCompilesOnThisCompiler) {
  VocabularyCheck check;
  check.SetBoth();
  check.mu().Lock();
  check.mu().Unlock();
}

}  // namespace
