#include <memory>

#include <gtest/gtest.h>

#include "claims/ratio.h"
#include "core/delta.h"
#include "core/engine.h"
#include "core/ev.h"
#include "core/incremental.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace factcheck {
namespace {

TEST(RatioClaimTest, EvaluatesPercentageChange) {
  RatioClaim claim = MakeRatioComparisonClaim(0, 2, 2);
  // earlier = x0 + x1 = 10, later = x2 + x3 = 17 -> +70%.
  EXPECT_NEAR(claim.Evaluate({4, 6, 8, 9}), 0.7, 1e-12);
}

TEST(RatioClaimTest, ReferencesAreSortedUnion) {
  RatioClaim claim = MakeRatioComparisonClaim(3, 0, 2);
  EXPECT_EQ(claim.References(), (std::vector<int>{0, 1, 3, 4}));
}

TEST(RatioClaimTest, GiulianiScaleExample) {
  // "Adoptions went up 65 to 70 percent" between 4-year windows.
  RatioClaim claim = MakeRatioComparisonClaim(0, 4, 4);
  std::vector<double> x = {1784, 1850, 2021, 2302,   // 1989-1992
                           3105, 3646, 3914, 3801};  // 1995-1998-ish
  double q = claim.Evaluate(x);
  EXPECT_GT(q, 0.6);
  EXPECT_LT(q, 0.9);
}

TEST(RatioPerturbationsTest, DisjointByConstruction) {
  RatioPerturbationSet set = NonOverlappingRatioPerturbations(40, 4, 16, 1.5);
  EXPECT_GE(set.size(), 2);
  std::vector<bool> seen(40, false);
  for (const RatioClaim& q : set.perturbations) {
    for (int i : q.References()) {
      EXPECT_FALSE(seen[i]) << "object " << i << " shared";
      seen[i] = true;
    }
  }
  double total = 0;
  for (double s : set.sensibilities) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RatioEvEvaluatorTest, MatchesBruteForceEnumeration) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    CleaningProblem p = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 12, .min_support = 2, .max_support = 3});
    RatioPerturbationSet context =
        NonOverlappingRatioPerturbations(12, 2, 4, 1.5);
    for (QualityMeasure measure :
         {QualityMeasure::kBias, QualityMeasure::kDuplicity,
          QualityMeasure::kFragility}) {
      double reference = 0.1;
      RatioEvEvaluator fast(&p, &context, measure, reference);
      LambdaQueryFunction generic = RatioQualityFunction(
          context, measure, reference,
          StrengthDirection::kHigherIsStronger);
      Rng rng(seed * 3 + 1);
      for (int trial = 0; trial < 5; ++trial) {
        int k = rng.UniformInt(0, 6);
        std::vector<int> cleaned = rng.SampleWithoutReplacement(12, k);
        double exact = ExpectedPosteriorVariance(generic, p, cleaned);
        EXPECT_NEAR(fast.EV(cleaned), exact, 1e-7 * (1 + exact))
            << "seed " << seed << " measure " << static_cast<int>(measure);
      }
      QualityMoments moments = fast.Moments();
      EXPECT_NEAR(moments.mean, ExpectedValue(generic, p),
                  1e-7 * (1 + std::abs(moments.mean)));
    }
  }
}

TEST(RatioEvEvaluatorTest, EvMonotoneAndZeroWhenAllCleaned) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 9,
      {.size = 16, .min_support = 2, .max_support = 3});
  RatioPerturbationSet context =
      NonOverlappingRatioPerturbations(16, 2, 4, 1.5);
  RatioEvEvaluator fast(&p, &context, QualityMeasure::kDuplicity, 0.0);
  std::vector<int> cleaned;
  double prev = fast.PriorVariance();
  for (int i = 0; i < 16; ++i) {
    cleaned.push_back(i);
    double next = fast.EV(cleaned);
    EXPECT_LE(next, prev + 1e-9);
    prev = next;
  }
  EXPECT_NEAR(prev, 0.0, 1e-12);
}

TEST(RatioEvEvaluatorTest, GreedyReducesUncertainty) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 13,
      {.size = 16, .min_support = 2, .max_support = 4});
  RatioPerturbationSet context =
      NonOverlappingRatioPerturbations(16, 2, 4, 1.5);
  RatioEvEvaluator fast(&p, &context, QualityMeasure::kFragility, 0.2);
  double prior = fast.PriorVariance();
  if (prior < 1e-12) return;
  Selection sel = fast.GreedyMinVar(p.TotalCost() * 0.3);
  EXPECT_LT(fast.EV(sel.cleaned), prior);
  EXPECT_LE(sel.cost, p.TotalCost() * 0.3);
}

TEST(RatioEvEvaluatorDeathTest, OverlappingPerturbationsAbort) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 17, {.size = 8});
  RatioPerturbationSet context;
  context.original = MakeRatioComparisonClaim(0, 2, 2);
  context.perturbations = {MakeRatioComparisonClaim(0, 2, 2),
                           MakeRatioComparisonClaim(2, 4, 2)};  // share 2,3
  context.sensibilities = {0.5, 0.5};
  EXPECT_DEATH(
      RatioEvEvaluator(&p, &context, QualityMeasure::kBias, 0.0),
      "CHECK failed");
}

// The engine's incremental greedy driven through MakeIncremental must
// select bit-identically to the bespoke GreedyMinVar — the satellite that
// ported RatioEvEvaluator onto the IncrementalObjective protocol.
TEST(RatioEvEvaluatorTest, EngineIncrementalMatchesBespokeGreedy) {
  for (uint64_t seed : {3u, 21u, 77u}) {
    CleaningProblem p = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 16, .min_support = 2, .max_support = 3});
    RatioPerturbationSet context =
        NonOverlappingRatioPerturbations(16, 2, 4, 1.5);
    for (QualityMeasure measure :
         {QualityMeasure::kBias, QualityMeasure::kDuplicity}) {
      RatioEvEvaluator evaluator(&p, &context, measure, 0.1);
      const double budget = p.TotalCost() * 0.3;
      Selection bespoke = evaluator.GreedyMinVar(budget);

      EvalEngine engine(
          [&](const std::vector<int>& cleaned) { return evaluator.EV(cleaned); },
          OptimizeDirection::kMinimize);
      std::unique_ptr<IncrementalObjective> incremental =
          evaluator.MakeIncremental();
      GreedyOptions options;
      options.incremental = incremental.get();
      Selection engine_sel = engine.PlainGreedy(p.Costs(), budget, options);

      EXPECT_EQ(engine_sel.cleaned, bespoke.cleaned)
          << "seed " << seed << " measure " << static_cast<int>(measure);
      EXPECT_EQ(engine_sel.order, bespoke.order);
      EXPECT_EQ(engine_sel.cost, bespoke.cost);  // bit-exact
      // The incremental protocol actually ran: probes, not batch sweeps.
      EXPECT_GT(engine.stats().probes, 0);
      EXPECT_EQ(engine.stats().commits,
                static_cast<std::int64_t>(engine_sel.cleaned.size()));
    }
  }
}

// A mutation between evaluations is absorbed by RefreshIfStale: the
// evaluator answers exactly like one constructed fresh on the mutated
// problem (the stale-term-cache bugfix).
TEST(RatioEvEvaluatorTest, RefreshAfterMutationMatchesFreshEvaluator) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 9,
      {.size = 16, .min_support = 2, .max_support = 3});
  RatioPerturbationSet context =
      NonOverlappingRatioPerturbations(16, 2, 4, 1.5);
  RatioEvEvaluator live(&p, &context, QualityMeasure::kDuplicity, 0.1);
  // Warm the term caches on the pre-mutation state.
  std::vector<std::vector<int>> sets = {{}, {0, 1}, {4, 5, 10}, {2, 7, 12}};
  for (const auto& cleaned : sets) live.EV(cleaned);

  // Mutate an object referenced by the first perturbation, plus an
  // unrelated cost (which must not disturb any term).
  const int touched = context.perturbations[0].References()[0];
  p.Apply(ProblemDelta::ReplaceDistribution(
      touched, DiscreteDistribution({1.0, 3.0, 50.0}, {0.25, 0.5, 0.25})));
  p.Apply(ProblemDelta::SetCost(15, 9.0));

  RatioEvEvaluator fresh(&p, &context, QualityMeasure::kDuplicity, 0.1);
  for (const auto& cleaned : sets) {
    EXPECT_EQ(live.EV(cleaned), fresh.EV(cleaned))  // bit-exact
        << "cleaned set size " << cleaned.size();
  }
  Selection warm = live.GreedyMinVar(p.TotalCost() * 0.3);
  Selection cold = fresh.GreedyMinVar(p.TotalCost() * 0.3);
  EXPECT_EQ(warm.cleaned, cold.cleaned);
  EXPECT_EQ(warm.order, cold.order);
}

TEST(RatioClaimTest, DenominatorGuardKeepsRatioFinite) {
  RatioClaim claim = MakeRatioComparisonClaim(0, 1, 1);
  double q = claim.Evaluate({0.0, 5.0});
  EXPECT_TRUE(std::isfinite(q));
}

}  // namespace
}  // namespace factcheck
