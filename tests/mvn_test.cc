#include <gtest/gtest.h>

#include <cmath>

#include "dist/mvn.h"
#include "util/random.h"

namespace factcheck {
namespace {

TEST(MvnTest, IndependentLinearVariance) {
  MultivariateNormal mvn =
      MultivariateNormal::Independent({0, 0, 0}, {1.0, 2.0, 3.0});
  // Var[x1 + 2 x2 - x3] = 1 + 4*4 + 9 = 26.
  EXPECT_NEAR(mvn.LinearVariance({1.0, 2.0, -1.0}), 26.0, 1e-12);
}

TEST(MvnTest, GeometricDecayCovarianceStructure) {
  Matrix cov = GeometricDecayCovariance({1.0, 2.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 0.5 * 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(cov(0, 2), 0.25 * 1.0 * 3.0);
  EXPECT_DOUBLE_EQ(cov(2, 0), cov(0, 2));
}

TEST(MvnTest, GeometricDecayGammaZeroIsDiagonal) {
  Matrix cov = GeometricDecayCovariance({1.5, 2.5}, 0.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cov(0, 0), 2.25);
}

TEST(MvnTest, ExpectedConditionalVarianceIndependentIsModular) {
  // Independent case: EV(T) = sum over uncleaned of a_i^2 sigma_i^2
  // (Lemma 3.1).
  MultivariateNormal mvn =
      MultivariateNormal::Independent({0, 0, 0, 0}, {1, 2, 3, 4});
  Vector a = {1.0, 1.0, -1.0, 0.5};
  EXPECT_NEAR(mvn.ExpectedConditionalVariance(a, {}),
              1 + 4 + 9 + 0.25 * 16, 1e-9);
  EXPECT_NEAR(mvn.ExpectedConditionalVariance(a, {1}), 1 + 9 + 4, 1e-9);
  EXPECT_NEAR(mvn.ExpectedConditionalVariance(a, {0, 1, 2, 3}), 0.0, 1e-9);
}

TEST(MvnTest, ConditionalVarianceNeverIncreases) {
  // Conditioning on more coordinates cannot increase the variance of a
  // linear functional (law of total variance for Gaussians).
  Rng rng(123);
  Matrix cov = GeometricDecayCovariance({1.0, 2.0, 1.5, 0.5, 3.0}, 0.7);
  MultivariateNormal mvn(Vector(5, 0.0), cov);
  Vector a = {1.0, -1.0, 0.5, 2.0, -0.3};
  double prev = mvn.ExpectedConditionalVariance(a, {});
  std::vector<int> cleaned;
  for (int i : {2, 0, 4, 1, 3}) {
    cleaned.push_back(i);
    double next = mvn.ExpectedConditionalVariance(a, cleaned);
    EXPECT_LE(next, prev + 1e-9);
    prev = next;
  }
  EXPECT_NEAR(prev, 0.0, 1e-9);
}

TEST(MvnTest, ConditionalCovarianceMatchesSampling) {
  // Empirically check Sigma_{B|A} via conditional sampling identity:
  // regression of X_B on X_A leaves residual covariance Sigma_{B|A}.
  Matrix cov = GeometricDecayCovariance({1.0, 1.0, 1.0}, 0.6);
  MultivariateNormal mvn({0, 0, 0}, cov);
  Matrix cond = mvn.ConditionalCovariance({0}, {1, 2});
  // Closed form: Sigma_{bb} - Sigma_{ba} Sigma_{aa}^{-1} Sigma_{ab}.
  // With unit sigmas and gamma = 0.6: Cov(1,2|0): 0.6 - 0.6*0.36 etc.
  EXPECT_NEAR(cond(0, 0), 1.0 - 0.36, 1e-9);
  EXPECT_NEAR(cond(1, 1), 1.0 - 0.36 * 0.36, 1e-9);
  EXPECT_NEAR(cond(0, 1), 0.6 - 0.6 * 0.36, 1e-9);
}

TEST(MvnTest, SampleMomentsMatchModel) {
  Matrix cov = GeometricDecayCovariance({2.0, 1.0}, 0.5);
  MultivariateNormal mvn({10.0, -5.0}, cov);
  Rng rng(77);
  const int kN = 40000;
  double m0 = 0, m1 = 0, c00 = 0, c11 = 0, c01 = 0;
  for (int s = 0; s < kN; ++s) {
    Vector x = mvn.Sample(rng);
    m0 += x[0];
    m1 += x[1];
    c00 += x[0] * x[0];
    c11 += x[1] * x[1];
    c01 += x[0] * x[1];
  }
  m0 /= kN;
  m1 /= kN;
  EXPECT_NEAR(m0, 10.0, 0.05);
  EXPECT_NEAR(m1, -5.0, 0.03);
  EXPECT_NEAR(c00 / kN - m0 * m0, 4.0, 0.15);
  EXPECT_NEAR(c11 / kN - m1 * m1, 1.0, 0.05);
  EXPECT_NEAR(c01 / kN - m0 * m1, 0.5 * 2.0 * 1.0, 0.08);
}

TEST(MvnTest, HighGammaStillWellDefined) {
  // gamma -> 1 produces a nearly singular covariance; the jittered
  // Cholesky path must keep conditional variances finite and non-negative.
  Matrix cov = GeometricDecayCovariance({1.0, 1.0, 1.0, 1.0}, 0.999999);
  MultivariateNormal mvn(Vector(4, 0.0), cov);
  Vector a = {1.0, 1.0, 1.0, 1.0};
  double ev = mvn.ExpectedConditionalVariance(a, {0});
  EXPECT_GE(ev, -1e-6);
  EXPECT_TRUE(std::isfinite(ev));
  // With near-perfect correlation, one observation nearly kills all
  // uncertainty in the sum.
  EXPECT_LT(ev, 1e-2);
}

}  // namespace
}  // namespace factcheck
