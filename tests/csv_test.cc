#include <gtest/gtest.h>

#include <cstdio>

#include "relational/csv.h"

namespace factcheck {
namespace {

const char kCsv[] =
    "year,cause,injuries\n"
    "2001,firearms,63012\n"
    "2002,falls,8100000.5\n";

TEST(CsvTest, ParsesTypedColumns) {
  auto table = TableFromCsv(
      kCsv, {ColumnType::kInt, ColumnType::kString, ColumnType::kDouble});
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->GetInt(0, 0), 2001);
  EXPECT_EQ(table->GetString(1, 1), "falls");
  EXPECT_DOUBLE_EQ(table->GetDouble(1, 2), 8100000.5);
  EXPECT_EQ(table->schema().Find("cause"), 1);
}

TEST(CsvTest, RoundTrips) {
  std::vector<ColumnType> types = {ColumnType::kInt, ColumnType::kString,
                                   ColumnType::kDouble};
  auto table = TableFromCsv(kCsv, types);
  ASSERT_TRUE(table.has_value());
  std::string out = TableToCsv(*table);
  auto again = TableFromCsv(out, types);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->num_rows(), table->num_rows());
  EXPECT_DOUBLE_EQ(again->GetDouble(1, 2), table->GetDouble(1, 2));
  EXPECT_EQ(again->GetString(0, 1), table->GetString(0, 1));
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  auto table = TableFromCsv("a,b\r\n1,2\r\n\r\n3,4\r\n",
                            {ColumnType::kInt, ColumnType::kInt});
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->GetInt(1, 0), 3);
}

TEST(CsvTest, RejectsColumnCountMismatch) {
  std::string error;
  auto table = TableFromCsv("a,b\n1\n",
                            {ColumnType::kInt, ColumnType::kInt}, &error);
  EXPECT_FALSE(table.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(CsvTest, RejectsBadNumericCell) {
  std::string error;
  auto table = TableFromCsv("a\nnot_a_number\n", {ColumnType::kDouble},
                            &error);
  EXPECT_FALSE(table.has_value());
  EXPECT_NE(error.find("bad double"), std::string::npos);
}

TEST(CsvTest, RejectsHeaderArityMismatch) {
  std::string error;
  auto table = TableFromCsv("a,b\n1,2\n", {ColumnType::kInt}, &error);
  EXPECT_FALSE(table.has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyInput) {
  std::string error;
  EXPECT_FALSE(TableFromCsv("", {ColumnType::kInt}, &error).has_value());
}

TEST(CsvFileTest, WritesAndReadsBack) {
  std::vector<ColumnType> types = {ColumnType::kInt, ColumnType::kString,
                                   ColumnType::kDouble};
  auto table = TableFromCsv(kCsv, types);
  ASSERT_TRUE(table.has_value());
  std::string path = ::testing::TempDir() + "/factcheck_csv_test.csv";
  ASSERT_TRUE(TableToCsvFile(*table, path));
  auto back = TableFromCsvFile(path, types);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_rows(), 2);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(TableFromCsvFile("/nonexistent/nope.csv",
                                {ColumnType::kInt}, &error)
                   .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace factcheck
