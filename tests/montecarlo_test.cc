#include <gtest/gtest.h>

#include "claims/ev_fast.h"
#include "core/ev.h"
#include "core/maxpr.h"
#include "core/scenario.h"
#include "data/synthetic.h"
#include "montecarlo/sampler.h"
#include "montecarlo/simulator.h"

namespace factcheck {
namespace {

TEST(SamplerTest, SamplesRespectSupports) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3, {.size = 20});
  Rng rng(5);
  for (int s = 0; s < 50; ++s) {
    std::vector<double> x = SampleValues(p, rng);
    ASSERT_EQ(static_cast<int>(x.size()), p.size());
    for (int i = 0; i < p.size(); ++i) {
      const auto& vals = p.object(i).dist.values();
      EXPECT_TRUE(std::find(vals.begin(), vals.end(), x[i]) != vals.end());
    }
  }
}

TEST(SamplerTest, MonteCarloEvApproachesExact) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 5, .min_support = 2, .max_support = 3});
  LambdaQueryFunction f({0, 1, 2, 3, 4}, [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s += v;
    return s < 200 ? 1.0 : 0.0;
  });
  Rng rng(11);
  for (const std::vector<int>& cleaned :
       {std::vector<int>{}, {1}, {0, 3}}) {
    double exact = ExpectedPosteriorVariance(f, p, cleaned);
    double mc = MonteCarloEV(f, p, cleaned, 400, 200, rng);
    EXPECT_NEAR(mc, exact, 0.05 + 0.15 * exact) << "set size "
                                                << cleaned.size();
  }
}

TEST(SamplerTest, MonteCarloSurpriseApproachesExact) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 13,
      {.size = 4, .min_support = 2, .max_support = 4});
  LinearQueryFunction f({0, 1, 2, 3}, {1, 1, 1, 1});
  Rng rng(17);
  double tau = 5.0;
  std::vector<int> cleaned = {0, 2};
  double exact = SurpriseProbabilityExact(f, p, cleaned, tau);
  double mc = MonteCarloSurpriseProbability(f, p, cleaned, tau, 20000, rng);
  EXPECT_NEAR(mc, exact, 0.02);
}

TEST(SamplerTest, SameSeedReproducesIdenticalScenarios) {
  // Regression for the engine test tiers: all sampling threads an explicit
  // caller-provided seed (no global RNG state), so two same-seed runs must
  // produce bit-identical scenarios.
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kStructuredMultimodal, 41,
      {.size = 15, .min_support = 2, .max_support = 5});
  Rng a(606), b(606);
  for (int rep = 0; rep < 20; ++rep) {
    EXPECT_EQ(SampleValues(p, a), SampleValues(p, b)) << rep;
  }
  Rng sa(707), sb(707);
  InActionScenario scen_a = MakeScenario(p, sa);
  InActionScenario scen_b = MakeScenario(p, sb);
  EXPECT_EQ(scen_a.truth, scen_b.truth);
  Rng ja(808), jb(808);
  auto sampler = [&p](Rng& r) { return SampleValues(p, r); };
  ScenarioSet set_a = ScenarioSet::FromSamples(40, ja, sampler);
  ScenarioSet set_b = ScenarioSet::FromSamples(40, jb, sampler);
  ASSERT_EQ(set_a.size(), set_b.size());
  for (int s = 0; s < set_a.size(); ++s) {
    EXPECT_EQ(set_a.scenario(s).values, set_b.scenario(s).values) << s;
    EXPECT_EQ(set_a.scenario(s).prob, set_b.scenario(s).prob) << s;
  }
}

TEST(SimulatorTest, ScenarioTruthComesFromSupports) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 19, {.size = 10});
  Rng rng(23);
  InActionScenario scenario = MakeScenario(p, rng);
  ASSERT_EQ(static_cast<int>(scenario.truth.size()), p.size());
  for (int i = 0; i < p.size(); ++i) {
    const auto& vals = p.object(i).dist.values();
    EXPECT_TRUE(std::find(vals.begin(), vals.end(), scenario.truth[i]) !=
                vals.end());
  }
}

TEST(SimulatorTest, RevealTruthMakesPointMasses) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 29, {.size = 6});
  Rng rng(31);
  InActionScenario scenario = MakeScenario(p, rng);
  CleaningProblem revealed = RevealTruth(p, {1, 4}, scenario.truth);
  EXPECT_TRUE(revealed.object(1).dist.is_point_mass());
  EXPECT_DOUBLE_EQ(revealed.object(1).current_value, scenario.truth[1]);
  EXPECT_TRUE(revealed.object(4).dist.is_point_mass());
  EXPECT_FALSE(revealed.object(0).dist.is_point_mass() &&
               revealed.object(2).dist.is_point_mass() &&
               revealed.object(3).dist.is_point_mass() &&
               revealed.object(5).dist.is_point_mass());
}

TEST(SimulatorTest, CleaningEverythingPinsEstimateAtTruth) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 37,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  Rng rng(41);
  InActionScenario scenario = MakeScenario(p, rng);
  std::vector<int> all(p.size());
  for (int i = 0; i < p.size(); ++i) all[i] = i;
  QualityMoments moments = EstimateAfterCleaning(
      scenario, context, QualityMeasure::kDuplicity, reference, all);
  // Everything revealed: variance 0 and mean = true duplicity.
  EXPECT_NEAR(moments.variance, 0.0, 1e-12);
  ClaimQualityFunction f(&context, QualityMeasure::kDuplicity, reference);
  EXPECT_NEAR(moments.mean, f.Evaluate(scenario.truth), 1e-9);
}

TEST(SimulatorTest, MoreCleaningWeaklyReducesPosteriorVariance) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 43,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  Rng rng(47);
  InActionScenario scenario = MakeScenario(p, rng);
  std::vector<int> cleaned;
  QualityMoments prev = EstimateAfterCleaning(
      scenario, context, QualityMeasure::kBias, reference, cleaned);
  // Bias is linear, so revealing values always (weakly) reduces variance,
  // regardless of the revealed outcomes.
  for (int i : {3, 4, 5, 6, 7}) {
    cleaned.push_back(i);
    QualityMoments next = EstimateAfterCleaning(
        scenario, context, QualityMeasure::kBias, reference, cleaned);
    EXPECT_LE(next.variance, prev.variance + 1e-9);
    prev = next;
  }
}

TEST(SequentialMinVarTest, TrajectoryStartsAtPriorAndStaysInBudget) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 61,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  Rng rng(67);
  InActionScenario scenario = MakeScenario(p, rng);
  double budget = p.TotalCost() * 0.5;
  std::vector<TrajectoryPoint> trajectory = SequentialMinVarTrajectory(
      scenario, context, QualityMeasure::kDuplicity, reference,
      StrengthDirection::kHigherIsStronger, budget);
  ASSERT_GE(trajectory.size(), 2u);
  EXPECT_EQ(trajectory[0].object, -1);
  EXPECT_DOUBLE_EQ(trajectory[0].cost_so_far, 0.0);
  ClaimEvEvaluator prior(&p, &context, QualityMeasure::kDuplicity,
                         reference);
  EXPECT_NEAR(trajectory[0].posterior_variance, prior.PriorVariance(),
              1e-9);
  for (size_t k = 1; k < trajectory.size(); ++k) {
    EXPECT_LE(trajectory[k].cost_so_far, budget + 1e-9);
    EXPECT_GT(trajectory[k].cost_so_far, trajectory[k - 1].cost_so_far);
  }
}

TEST(SequentialMinVarTest, FinalStateMatchesBatchReveal) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 71,
      {.size = 9, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(9, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  Rng rng(73);
  InActionScenario scenario = MakeScenario(p, rng);
  std::vector<TrajectoryPoint> trajectory = SequentialMinVarTrajectory(
      scenario, context, QualityMeasure::kDuplicity, reference,
      StrengthDirection::kHigherIsStronger, p.TotalCost());
  std::vector<int> cleaned;
  for (size_t k = 1; k < trajectory.size(); ++k) {
    cleaned.push_back(trajectory[k].object);
  }
  QualityMoments batch = EstimateAfterCleaning(
      scenario, context, QualityMeasure::kDuplicity, reference, cleaned);
  EXPECT_NEAR(trajectory.back().posterior_variance, batch.variance, 1e-9);
  EXPECT_NEAR(trajectory.back().estimate_mean, batch.mean, 1e-9);
  // Full budget: everything referenced gets cleaned, variance hits zero.
  EXPECT_NEAR(trajectory.back().posterior_variance, 0.0, 1e-9);
}

TEST(RedrawTest, RedrawCurrentValuesKeepsDistributions) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 53,
      {.size = 30, .min_support = 2, .max_support = 6});
  Rng rng(59);
  CleaningProblem redrawn = RedrawCurrentValues(p, rng);
  int moved = 0;
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_TRUE(redrawn.object(i).dist == p.object(i).dist);
    if (redrawn.object(i).current_value != p.object(i).current_value) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 5);  // means rarely coincide with support draws
}

}  // namespace
}  // namespace factcheck
