#include <gtest/gtest.h>

#include <cmath>

#include "dist/pooling.h"

namespace factcheck {
namespace {

TEST(PoolOpinionsTest, SingleExpertIsIdentity) {
  DiscreteDistribution d({1.0, 2.0}, {0.3, 0.7});
  DiscreteDistribution pooled = PoolOpinions({d}, {1.0});
  EXPECT_TRUE(pooled == d);
}

TEST(PoolOpinionsTest, MixtureWeightsAtoms) {
  DiscreteDistribution a({0.0}, {1.0});
  DiscreteDistribution b({1.0}, {1.0});
  DiscreteDistribution pooled = PoolOpinions({a, b}, {3.0, 1.0});
  ASSERT_EQ(pooled.support_size(), 2);
  EXPECT_DOUBLE_EQ(pooled.prob(0), 0.75);
  EXPECT_DOUBLE_EQ(pooled.prob(1), 0.25);
}

TEST(PoolOpinionsTest, SharedAtomsAccumulate) {
  DiscreteDistribution a({1.0, 2.0}, {0.5, 0.5});
  DiscreteDistribution b({2.0, 3.0}, {0.5, 0.5});
  DiscreteDistribution pooled = PoolOpinions({a, b}, {1.0, 1.0});
  ASSERT_EQ(pooled.support_size(), 3);
  EXPECT_DOUBLE_EQ(pooled.prob(1), 0.5);  // atom 2.0 from both experts
}

TEST(PoolOpinionsTest, MixtureMeanIsWeightedMean) {
  DiscreteDistribution a({10.0, 20.0}, {0.5, 0.5});  // mean 15
  DiscreteDistribution b({0.0}, {1.0});              // mean 0
  DiscreteDistribution pooled = PoolOpinions({a, b}, {0.4, 0.6});
  EXPECT_NEAR(pooled.Mean(), 0.4 * 15.0, 1e-12);
}

TEST(PoolOpinionsTest, ZeroWeightExpertIgnored) {
  DiscreteDistribution a({1.0}, {1.0});
  DiscreteDistribution b({99.0}, {1.0});
  DiscreteDistribution pooled = PoolOpinions({a, b}, {1.0, 0.0});
  EXPECT_TRUE(pooled.is_point_mass());
  EXPECT_DOUBLE_EQ(pooled.Mean(), 1.0);
}

TEST(PoolOpinionsLogTest, AgreementSharpensConsensus) {
  // Two experts both leaning to atom 1: the log pool is more confident
  // than either (relative to the linear pool).
  DiscreteDistribution a({0.0, 1.0}, {0.3, 0.7});
  DiscreteDistribution b({0.0, 1.0}, {0.3, 0.7});
  DiscreteDistribution linear = PoolOpinions({a, b}, {1.0, 1.0});
  DiscreteDistribution log_pool =
      PoolOpinionsLogarithmic({a, b}, {1.0, 1.0});
  EXPECT_NEAR(linear.prob(1), 0.7, 1e-12);
  EXPECT_NEAR(log_pool.prob(1), 0.7, 1e-12);  // equal weights, same experts
  // With asymmetric experts the geometric mean lands between them.
  DiscreteDistribution c({0.0, 1.0}, {0.9, 0.1});
  DiscreteDistribution mixed = PoolOpinionsLogarithmic({a, c}, {1.0, 1.0});
  double geo0 = std::sqrt(0.3 * 0.9);
  double geo1 = std::sqrt(0.7 * 0.1);
  EXPECT_NEAR(mixed.prob(0), geo0 / (geo0 + geo1), 1e-12);
}

TEST(PoolOpinionsLogTest, VetoedAtomVanishes) {
  DiscreteDistribution a({0.0, 1.0}, {0.5, 0.5});
  DiscreteDistribution b({0.0, 1.0}, {1.0, 0.0});
  // Constructing b drops the zero atom, so align supports manually.
  DiscreteDistribution b_full({0.0, 1.0}, {1.0 - 1e-301, 1e-301});
  (void)b;
  DiscreteDistribution pooled =
      PoolOpinionsLogarithmic({a, b_full}, {1.0, 1.0});
  EXPECT_TRUE(pooled.is_point_mass());
  EXPECT_DOUBLE_EQ(pooled.Mean(), 0.0);
}

TEST(ResolveConflictingReportsTest, ReliabilityBecomesProbability) {
  DiscreteDistribution d = ResolveConflictingReports(
      {{100.0, 0.8}, {110.0, 0.2}});
  ASSERT_EQ(d.support_size(), 2);
  EXPECT_NEAR(d.prob(0), 0.8, 1e-12);
  EXPECT_NEAR(d.prob(1), 0.2, 1e-12);
}

TEST(ResolveConflictingReportsTest, AgreeingSourcesAccumulate) {
  DiscreteDistribution d = ResolveConflictingReports(
      {{100.0, 0.5}, {100.0, 0.5}, {110.0, 0.5}});
  ASSERT_EQ(d.support_size(), 2);
  EXPECT_NEAR(d.prob(0), 2.0 / 3, 1e-12);
}

TEST(ResolveConflictingReportsDeathTest, ZeroReliabilityAborts) {
  EXPECT_DEATH(ResolveConflictingReports({{1.0, 0.0}}), "CHECK failed");
}

}  // namespace
}  // namespace factcheck
