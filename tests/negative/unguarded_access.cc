// Negative-compile fixture for the thread-safety gate (CMakeLists.txt
// runs this through try_compile with -Werror=thread-safety on Clang and
// REQUIRES the build to FAIL): the unguarded increment below reads and
// writes an FC_GUARDED_BY field without holding its mutex — the exact
// shape of PR 7's planes-cache bug.  If this file ever compiles under
// the Clang gate, the analysis is off and the configure step aborts.
//
// tests/negative/guarded_access_ok.cc is the matching positive control,
// so a failure here can't be blamed on a broken include path.

#include "util/annotations.h"

namespace {

class Counter {
 public:
  // BUG (on purpose): touches value_ without mu_.
  void Increment() { ++value_; }

 private:
  fc::Mutex mu_;
  int value_ FC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
