// Positive control for the negative-compile thread-safety gate: the same
// counter as tests/negative/unguarded_access.cc with the lock taken.
// This file must COMPILE under -Werror=thread-safety; if it does not,
// the gate's toolchain setup (include path, flags) is broken and the
// "expected failure" of the negative fixture proves nothing.

#include "util/annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    fc::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  fc::Mutex mu_;
  int value_ FC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
