// Error-path and smoke coverage for the factcheck_cli driver (run and
// bench subcommands), exercised in-process via cli::Main: every
// user-facing failure must exit non-zero after a one-line
// "factcheck_cli: ..." diagnostic on stderr, and never abort.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace factcheck {
namespace {

struct CliOutcome {
  int exit_code = 0;
  std::string stderr_text;
};

// Runs cli::Main on the given arguments, capturing stderr.
CliOutcome RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "factcheck_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  testing::internal::CaptureStderr();
  CliOutcome outcome;
  outcome.exit_code =
      cli::Main(static_cast<int>(argv.size()), argv.data());
  outcome.stderr_text = testing::internal::GetCapturedStderr();
  return outcome;
}

// The diagnostic contract: one "factcheck_cli: ..." line (usage text may
// follow on further lines).
void ExpectDiagnostic(const CliOutcome& outcome,
                      const std::string& fragment) {
  EXPECT_EQ(outcome.exit_code, 1);
  EXPECT_NE(outcome.stderr_text.find("factcheck_cli: "), std::string::npos)
      << outcome.stderr_text;
  EXPECT_NE(outcome.stderr_text.find(fragment), std::string::npos)
      << outcome.stderr_text;
  EXPECT_NE(outcome.stderr_text.find('\n'), std::string::npos);
}

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(CliErrors, UnknownCommand) {
  ExpectDiagnostic(RunCli({"frobnicate"}), "unknown command");
}

TEST(CliErrors, RunMissingProblemFile) {
  ExpectDiagnostic(RunCli({"run", "--problem", "/nonexistent/p.csv",
                           "--algo", "greedy_minvar", "--budget", "3"}),
                   "cannot open /nonexistent/p.csv");
}

TEST(CliErrors, RunMalformedCsv) {
  std::string path = WriteTempFile("cli_test_malformed.csv",
                                   "label,not-a-number,1,1;2,0.5;0.5\n");
  ExpectDiagnostic(
      RunCli({"run", "--problem", path, "--algo", "greedy_minvar",
              "--budget", "3"}),
      path + ": ");
}

TEST(CliErrors, RunUnknownAlgorithm) {
  std::string path = WriteTempFile("cli_test_ok.csv",
                                   "a,1,1,1;2,0.5;0.5\nb,2,1,2;3,0.5;0.5\n");
  ExpectDiagnostic(RunCli({"run", "--problem", path, "--algo", "nope",
                           "--budget", "3"}),
                   "unknown algorithm \"nope\"");
}

TEST(CliErrors, RunBadNumericFlags) {
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--algo",
                           "greedy_minvar", "--budget", "three"}),
                   "--budget needs a number");
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--algo",
                           "greedy_minvar", "--budget", "nan"}),
                   "--budget needs a number");
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--algo",
                           "greedy_minvar", "--budget", "3", "--threads",
                           "0"}),
                   "--threads needs a positive integer");
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--algo",
                           "greedy_minvar", "--budget", "3", "--seed",
                           "2.5"}),
                   "--seed needs an integer");
}

TEST(CliErrors, RunMissingRequiredFlags) {
  ExpectDiagnostic(RunCli({"run", "--algo", "greedy_minvar", "--budget",
                           "3"}),
                   "--problem is required");
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--budget", "3"}),
                   "--algo is required");
  ExpectDiagnostic(RunCli({"run", "--problem", "p.csv", "--algo",
                           "greedy_minvar"}),
                   "--budget or --budget-frac is required");
}

TEST(CliErrors, RunRefsOutOfRange) {
  std::string path = WriteTempFile("cli_test_refs.csv",
                                   "a,1,1,1;2,0.5;0.5\nb,2,1,2;3,0.5;0.5\n");
  ExpectDiagnostic(RunCli({"run", "--problem", path, "--algo",
                           "greedy_minvar", "--budget", "3", "--refs",
                           "7"}),
                   "out of range");
}

TEST(CliErrors, BenchUnknownSubcommand) {
  ExpectDiagnostic(RunCli({"bench", "frob"}), "unknown bench subcommand");
}

TEST(CliErrors, BenchUnknownWorkload) {
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "nope"}),
                   "unknown workload \"nope\"");
}

TEST(CliErrors, BenchUnknownAlgorithm) {
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--budget-fracs", "0.1", "--algos", "nope"}),
                   "unknown algorithm");
}

TEST(CliErrors, BenchMissingWorkload) {
  ExpectDiagnostic(RunCli({"bench", "run"}), "--workload is required");
}

// An objective-driven algorithm of the opposite kind must not optimize
// the workload metric in the wrong direction — rejected, not mis-run.
TEST(CliErrors, BenchMetricDirectionMismatch) {
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--budget-fracs", "0.1", "--algos",
                           "greedy_maxpr"}),
                   "optimizes maxpr, but the workload metric is a minvar");
}

TEST(CliErrors, BenchBadNumericFlags) {
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--budget-fracs", "0.1,x"}),
                   "--budget-fracs needs numbers");
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--reps", "0"}),
                   "--reps needs a positive integer");
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--warmup", "-1"}),
                   "--warmup needs a non-negative integer");
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--gamma", "inf"}),
                   "--gamma needs a number");
}

TEST(CliErrors, BenchUnwritableJsonPath) {
  ExpectDiagnostic(RunCli({"bench", "run", "--workload", "urx_uniqueness",
                           "--budget-fracs", "0.1", "--algos",
                           "greedy_naive", "--json",
                           "/nonexistent/dir/out.json"}),
                   "cannot write /nonexistent/dir/out.json");
}

TEST(CliSmoke, BenchListWorkloadsRuns) {
  CliOutcome outcome = RunCli({"bench", "list-workloads"});
  EXPECT_EQ(outcome.exit_code, 0);
}

}  // namespace
}  // namespace factcheck
