// Tests for the plan-explanation renderer and CleaningProblem CSV I/O.

#include <gtest/gtest.h>

#include "claims/explain.h"
#include "data/problem_io.h"
#include "data/synthetic.h"

namespace factcheck {
namespace {

TEST(ExplainTest, StepsAccountForAllRemovedVariance) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kDuplicity,
                             reference);
  Selection sel = evaluator.GreedyMinVar(p.TotalCost() * 0.4);
  CleaningPlanExplanation explanation =
      ExplainSelection(p, evaluator, sel);
  EXPECT_NEAR(explanation.prior_variance, evaluator.PriorVariance(), 1e-12);
  EXPECT_NEAR(explanation.final_variance, evaluator.EV(sel.cleaned), 1e-9);
  EXPECT_EQ(explanation.steps.size(), sel.cleaned.size());
  double removed = 0.0;
  for (const PlanStep& step : explanation.steps) {
    removed += step.marginal_benefit;
    EXPECT_GE(step.marginal_benefit, -1e-9);  // EV is monotone
    EXPECT_GT(step.claims_touched, 0);
    EXPECT_FALSE(step.label.empty());
  }
  EXPECT_NEAR(removed,
              explanation.prior_variance - explanation.final_variance,
              1e-9);
}

TEST(ExplainTest, MarginalBenefitsAreOrderDependentPrefixDrops) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5,
      {.size = 9, .min_support = 2, .max_support = 3});
  PerturbationSet context = SlidingWindowSumPerturbations(9, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kBias, reference);
  Selection sel;
  sel.cleaned = {1, 4, 7};
  sel.order = {4, 7, 1};
  sel.cost = p.Costs()[1] + p.Costs()[4] + p.Costs()[7];
  CleaningPlanExplanation explanation =
      ExplainSelection(p, evaluator, sel);
  ASSERT_EQ(explanation.steps.size(), 3u);
  EXPECT_EQ(explanation.steps[0].object, 4);  // uses the pick order
  EXPECT_NEAR(explanation.steps[0].ev_after, evaluator.EV({4}), 1e-12);
  EXPECT_NEAR(explanation.steps[1].ev_after, evaluator.EV({4, 7}), 1e-12);
}

TEST(ExplainTest, TextRenderingContainsSummaryAndSteps) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 9, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(9, 3, 0, 1.5);
  double reference = context.original.Evaluate(p.CurrentValues());
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kDuplicity,
                             reference);
  Selection sel = evaluator.GreedyMinVar(p.TotalCost() * 0.3);
  std::string text = ExplainSelection(p, evaluator, sel).ToText();
  EXPECT_NE(text.find("cleaning plan"), std::string::npos);
  EXPECT_NE(text.find("uncertainty:"), std::string::npos);
  EXPECT_NE(text.find("URx/"), std::string::npos);  // object labels
}

TEST(ProblemIoTest, RoundTripPreservesEverything) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kLogNormal, 11,
      {.size = 20, .min_support = 1, .max_support = 6});
  std::string csv = data::ProblemToCsv(p);
  std::string error;
  auto back = data::ProblemFromCsv(csv, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), p.size());
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_EQ(back->object(i).label, p.object(i).label);
    EXPECT_DOUBLE_EQ(back->object(i).current_value,
                     p.object(i).current_value);
    EXPECT_DOUBLE_EQ(back->object(i).cost, p.object(i).cost);
    // Re-normalization on parse may perturb probabilities by an ulp.
    const auto& a = back->object(i).dist;
    const auto& b = p.object(i).dist;
    ASSERT_EQ(a.support_size(), b.support_size()) << i;
    for (int k = 0; k < a.support_size(); ++k) {
      EXPECT_DOUBLE_EQ(a.value(k), b.value(k)) << i;
      EXPECT_NEAR(a.prob(k), b.prob(k), 1e-15) << i;
    }
  }
}

TEST(ProblemIoTest, RoundTripQuotesSeparatorsInLabels) {
  // Labels containing the cell separator, the list separator, or quotes
  // used to corrupt the row structure on write; they must round-trip.
  const std::vector<std::string> labels = {
      "crimes, rev.",      // cell separator
      "a;b;c",             // list separator
      "said \"hi\"",       // embedded quotes
      ",leading",          // separator at the edge
      "trailing;",         //
      "\"already,quoted\"",  // quotes plus separator
      "plain",             //
  };
  std::vector<UncertainObject> objects;
  for (size_t i = 0; i < labels.size(); ++i) {
    UncertainObject obj;
    obj.label = labels[i];
    obj.current_value = 10.0 + i;
    obj.cost = 1.0 + i;
    obj.dist = DiscreteDistribution({9.0 + i, 11.0 + i}, {0.5, 0.5});
    objects.push_back(std::move(obj));
  }
  CleaningProblem p(std::move(objects));
  std::string csv = data::ProblemToCsv(p);
  std::string error;
  auto back = data::ProblemFromCsv(csv, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), p.size());
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_EQ(back->object(i).label, labels[i]) << i;
    EXPECT_DOUBLE_EQ(back->object(i).current_value,
                     p.object(i).current_value);
    EXPECT_DOUBLE_EQ(back->object(i).cost, p.object(i).cost);
    ASSERT_EQ(back->object(i).dist.support_size(), 2) << i;
  }
}

TEST(ProblemIoTest, RejectsMalformedRows) {
  std::string error;
  EXPECT_FALSE(data::ProblemFromCsv("", &error).has_value());
  EXPECT_FALSE(
      data::ProblemFromCsv("header\nlabel,1,1\n", &error).has_value());
  EXPECT_NE(error.find("expected 5"), std::string::npos);
  EXPECT_FALSE(
      data::ProblemFromCsv("h\nx,1,0,1;2,0.5;0.5\n", &error).has_value());
  EXPECT_NE(error.find("non-positive cost"), std::string::npos);
  EXPECT_FALSE(
      data::ProblemFromCsv("h\nx,1,1,1;2,0.5\n", &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos);
  EXPECT_FALSE(
      data::ProblemFromCsv("h\nx,1,1,1;zap,0.5;0.5\n", &error).has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
}

TEST(ProblemIoTest, NegativeProbabilityRejected) {
  std::string error;
  EXPECT_FALSE(
      data::ProblemFromCsv("h\nx,1,1,1;2,-0.5;1.5\n", &error).has_value());
  EXPECT_NE(error.find("negative probability"), std::string::npos);
}

}  // namespace
}  // namespace factcheck
