// Reproductions of the paper's worked examples with their exact numbers:
// Example 3 (uncertain effect of cleaning), Example 5 (differing
// objectives), Example 6 (GreedyNaive vs GreedyMinVar), and the Section 3.1
// knapsack counterexample.

#include <gtest/gtest.h>

#include "core/ev.h"
#include "core/greedy.h"
#include "core/maxpr.h"

namespace factcheck {
namespace {

CleaningProblem Example5Problem() {
  std::vector<UncertainObject> objects(2);
  objects[0].label = "X1";
  objects[0].current_value = 1.0;
  objects[0].dist =
      DiscreteDistribution({0, 0.5, 1, 1.5, 2}, {0.2, 0.2, 0.2, 0.2, 0.2});
  objects[0].cost = 1.0;
  objects[1].label = "X2";
  objects[1].current_value = 1.0;
  objects[1].dist = DiscreteDistribution({1.0 / 3, 1.0, 5.0 / 3},
                                         {1.0 / 3, 1.0 / 3, 1.0 / 3});
  objects[1].cost = 1.0;
  return CleaningProblem(std::move(objects));
}

TEST(PaperExample3, IndicatorUncertaintyNumbers) {
  std::vector<UncertainObject> objects(3);
  double ps[3] = {0.5, 1.0 / 3, 0.25};
  for (int i = 0; i < 3; ++i) {
    objects[i].dist = DiscreteDistribution({0.0, 1.0}, {1 - ps[i], ps[i]});
    objects[i].cost = 1.0;
    objects[i].current_value = 0.0;
  }
  CleaningProblem problem(std::move(objects));
  LambdaQueryFunction f({0, 1, 2}, [](const std::vector<double>& x) {
    return (x[0] + x[1] + x[2] < 3.0) ? 1.0 : 0.0;
  });
  // Pr[f = 0] = 1/24 without cleaning.
  EXPECT_NEAR(1.0 - ExpectedValue(f, problem), 1.0 / 24, 1e-12);
  // If X1 = 1: Pr[f = 0] = 1/12 (uncertainty increased toward a toss-up).
  CleaningProblem x1_one = problem;
  x1_one.Clean(0, 1.0);
  EXPECT_NEAR(1.0 - ExpectedValue(f, x1_one), 1.0 / 12, 1e-12);
  // If X1 = 0: f = 1 for sure.
  CleaningProblem x1_zero = problem;
  x1_zero.Clean(0, 0.0);
  EXPECT_NEAR(ExpectedValue(f, x1_zero), 1.0, 1e-12);
  EXPECT_NEAR(PriorVariance(f, x1_zero), 0.0, 1e-12);
}

TEST(PaperExample5, MinVarPrefersX1) {
  // Var[bias] = Var[X1] + Var[X2] = 1/2 + 8/27; cleaning X1 leaves 8/27 <
  // 1/2, so MinVar cleans X1.
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction bias({0, 1}, {1.0, 1.0}, -2.0);
  EXPECT_NEAR(PriorVariance(bias, problem), 0.5 + 8.0 / 27, 1e-12);
  EXPECT_NEAR(ExpectedPosteriorVariance(bias, problem, {0}), 8.0 / 27,
              1e-12);
  EXPECT_NEAR(ExpectedPosteriorVariance(bias, problem, {1}), 0.5, 1e-12);
  Selection sel = GreedyMinVar(bias, problem, 1.0);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{0}));
}

TEST(PaperExample5, MaxPrPrefersX2) {
  // Pr[X1 + X2 < 17/12]: cleaning X1 gives 1/5, cleaning X2 gives 1/3.
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction q({0, 1}, {1.0, 1.0});
  double tau = 2.0 - 17.0 / 12;
  EXPECT_NEAR(SurpriseProbabilityExact(q, problem, {0}, tau), 1.0 / 5,
              1e-12);
  EXPECT_NEAR(SurpriseProbabilityExact(q, problem, {1}, tau), 1.0 / 3,
              1e-12);
  Selection sel = GreedyMaxPr(q, problem, 1.0, tau);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
}

TEST(PaperExample5, TheTwoObjectivesDisagree) {
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction bias({0, 1}, {1.0, 1.0}, -2.0);
  LinearQueryFunction q({0, 1}, {1.0, 1.0});
  Selection minvar = GreedyMinVar(bias, problem, 1.0);
  Selection maxpr = GreedyMaxPr(q, problem, 1.0, 2.0 - 17.0 / 12);
  EXPECT_NE(minvar.cleaned, maxpr.cleaned);
}

TEST(PaperExample6, GreedyNaivePicksX1ButGreedyMinVarPicksX2) {
  CleaningProblem problem = Example5Problem();
  LambdaQueryFunction f({0, 1}, [](const std::vector<double>& x) {
    return (x[0] + x[1] < 11.0 / 12) ? 1.0 : 0.0;
  });
  // Prior variance: 26/225.
  EXPECT_NEAR(PriorVariance(f, problem), 26.0 / 225, 1e-12);
  // EV after cleaning X1: 4/45; after cleaning X2: 2/25.
  EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, {0}), 4.0 / 45, 1e-12);
  EXPECT_NEAR(ExpectedPosteriorVariance(f, problem, {1}), 2.0 / 25, 1e-12);
  // Improvements: cleaning X1 ~ 0.0266, cleaning X2 = 0.0355...
  EXPECT_NEAR(26.0 / 225 - 4.0 / 45, 0.02666, 1e-4);
  EXPECT_NEAR(26.0 / 225 - 2.0 / 25, 0.03555, 1e-4);
  // GreedyNaive ranks by Var: Var[X1] = 1/2 > Var[X2] = 8/27 -> X1.
  Selection naive = GreedyNaive(f, problem, 1.0);
  EXPECT_EQ(naive.cleaned, (std::vector<int>{0}));
  // GreedyMinVar picks X2, the better choice.
  Selection minvar = GreedyMinVar(f, problem, 1.0);
  EXPECT_EQ(minvar.cleaned, (std::vector<int>{1}));
}

TEST(PaperSection31, KnapsackCounterexampleFixedByFinalCheck) {
  // beta = (0.1, 10), costs = (0.0001, 2), budget 2: plain density greedy
  // returns 0.1; Algorithm 1's final check returns item 2 with value 10.
  Selection sel = StaticGreedy({0.1, 10.0}, {0.0001, 2.0}, 2.0);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
}

TEST(PaperExample2, WindowDeltaClaimIsLinear) {
  // Example 2's claim "crimes went up by more than 300 from last year" is
  // X2018 - X2017 (objects 4 and 3 in a 2014..2018 layout).
  LinearQueryFunction q({4, 3}, {1.0, -1.0});
  std::vector<double> x = {9010, 9275, 9300, 9125, 9430};
  EXPECT_DOUBLE_EQ(q.Evaluate(x), 305.0);  // the claim holds on stated data
}

}  // namespace
}  // namespace factcheck
