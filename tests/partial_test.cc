#include <gtest/gtest.h>

#include "core/ev.h"
#include "core/partial.h"
#include "data/synthetic.h"

namespace factcheck {
namespace {

TEST(PartialCleanTest, RetentionZeroCollapsesToPointMass) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 1, {.size = 3});
  PartialClean(p, 0, 42.0, 0.0);
  EXPECT_TRUE(p.object(0).dist.is_point_mass());
  EXPECT_DOUBLE_EQ(p.object(0).current_value, 42.0);
}

TEST(PartialCleanTest, VarianceShrinksByRetentionSquared) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 2,
      {.size = 3, .min_support = 4, .max_support = 6});
  double var_before = p.object(1).dist.Variance();
  PartialClean(p, 1, 50.0, 0.5);
  EXPECT_NEAR(p.object(1).dist.Variance(), 0.25 * var_before, 1e-9);
  EXPECT_DOUBLE_EQ(p.object(1).current_value, 50.0);
}

TEST(PartialCleanTest, RepeatedCleaningCompounds) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3,
      {.size = 2, .min_support = 5, .max_support = 6});
  double var0 = p.object(0).dist.Variance();
  PartialClean(p, 0, 40.0, 0.5);
  PartialClean(p, 0, 41.0, 0.5);
  EXPECT_NEAR(p.object(0).dist.Variance(), var0 / 16.0, 1e-9);
}

TEST(PartialCleanTest, SupportContractsAroundRevealedValue) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 4,
      {.size = 1, .min_support = 3, .max_support = 3});
  double lo = p.object(0).dist.values().front();
  double hi = p.object(0).dist.values().back();
  double r = 30.0;
  PartialClean(p, 0, r, 0.3);
  for (double v : p.object(0).dist.values()) {
    EXPECT_GE(v, std::min(r, r + 0.3 * (lo - r)) - 1e-9);
    EXPECT_LE(v, std::max(r, r + 0.3 * (hi - r)) + 1e-9);
  }
}

TEST(PartialWeightsTest, RemovalFractionScalesWeights) {
  LinearQueryFunction f({0, 2}, {2.0, 1.0});
  std::vector<double> variances = {4.0, 9.0, 16.0};
  std::vector<double> full = PartialMinVarWeights(f, variances, 3, 0.0);
  std::vector<double> half = PartialMinVarWeights(f, variances, 3, 0.5);
  EXPECT_DOUBLE_EQ(full[0], 16.0);
  EXPECT_DOUBLE_EQ(full[1], 0.0);
  EXPECT_DOUBLE_EQ(full[2], 16.0);
  EXPECT_DOUBLE_EQ(half[0], 0.75 * 16.0);
  EXPECT_DOUBLE_EQ(half[2], 0.75 * 16.0);
}

TEST(GreedyPartialTest, RetentionZeroMatchesModularGreedy) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5, {.size = 8});
  LinearQueryFunction f({0, 1, 2, 3, 4, 5, 6, 7},
                        {1, -1, 2, 0.5, 1, -2, 1, 0.25});
  double budget = p.TotalCost() * 0.4;
  PartialSelection partial = GreedyMinVarPartial(
      f, p.Variances(), p.Costs(), budget, 0.0);
  Selection modular = GreedyMinVarLinearIndependent(
      f, p.Variances(), p.Costs(), budget);
  // With retention 0 each object is cleaned at most once; the sets agree
  // up to the final-check (disabled in the partial variant), so compare
  // removed variance of the plain density order.
  std::vector<int> sorted_actions = partial.actions;
  std::sort(sorted_actions.begin(), sorted_actions.end());
  EXPECT_TRUE(std::unique(sorted_actions.begin(), sorted_actions.end()) ==
              sorted_actions.end());
  double modular_removed = 0;
  for (int i : modular.cleaned) {
    double a = f.Coefficient(i);
    modular_removed += a * a * p.Variances()[i];
  }
  EXPECT_NEAR(partial.removed_variance, modular_removed,
              1e-9 + 0.5 * modular_removed);
}

TEST(GreedyPartialTest, HighRetentionRecleansValuableObjects) {
  // One dominant object: with strong retention the greedy should spend
  // multiple passes on it before touching the rest.
  LinearQueryFunction f({0, 1}, {10.0, 0.1});
  std::vector<double> variances = {100.0, 1.0};
  std::vector<double> costs = {1.0, 1.0};
  PartialSelection sel =
      GreedyMinVarPartial(f, variances, costs, 3.0, 0.5);
  ASSERT_EQ(sel.actions.size(), 3u);
  EXPECT_EQ(sel.actions[0], 0);
  EXPECT_EQ(sel.actions[1], 0);
  EXPECT_EQ(sel.actions[2], 0);
}

TEST(GreedyPartialTest, RemovedVarianceNeverExceedsTotal) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 6, {.size = 10});
  LinearQueryFunction f = LinearQueryFunction::FromDense(
      std::vector<double>(10, 1.0));
  double total = 0;
  for (double v : p.Variances()) total += v;
  for (double retention : {0.0, 0.3, 0.7, 0.9}) {
    PartialSelection sel = GreedyMinVarPartial(
        f, p.Variances(), p.Costs(), p.TotalCost() * 2, retention);
    EXPECT_LE(sel.removed_variance, total + 1e-9) << retention;
    EXPECT_GT(sel.removed_variance, 0.0);
  }
}

TEST(GreedyPartialTest, BudgetRespected) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7, {.size = 10});
  LinearQueryFunction f = LinearQueryFunction::FromDense(
      std::vector<double>(10, 1.0));
  PartialSelection sel =
      GreedyMinVarPartial(f, p.Variances(), p.Costs(), 12.0, 0.6);
  EXPECT_LE(sel.cost, 12.0 + 1e-9);
}

TEST(GreedyPartialTest, PartialCleanMatchesWeightPrediction) {
  // End-to-end: applying the greedy's first action via PartialClean drops
  // the query variance by exactly the predicted modular weight.
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 8,
      {.size = 4, .min_support = 3, .max_support = 4});
  LinearQueryFunction f({0, 1, 2, 3}, {1, 2, -1, 0.5});
  double retention = 0.4;
  std::vector<double> weights =
      PartialMinVarWeights(f, p.Variances(), 4, retention);
  double var_before = PriorVariance(f, p);
  PartialSelection sel =
      GreedyMinVarPartial(f, p.Variances(), p.Costs(), 2.0, retention);
  ASSERT_FALSE(sel.actions.empty());
  int first = sel.actions[0];
  PartialClean(p, first, p.object(first).dist.Mean(), retention);
  double var_after = PriorVariance(f, p);
  EXPECT_NEAR(var_before - var_after, weights[first], 1e-6);
}

}  // namespace
}  // namespace factcheck
