#include <gtest/gtest.h>

#include "claims/counter.h"
#include "claims/perturbation.h"

namespace factcheck {
namespace {

PerturbationSet TwoWindowContext() {
  // Original: sum over [0..1]; perturbations: [2..3] and [4..5].
  PerturbationSet set;
  set.original = MakeWindowSumClaim(0, 2);
  set.perturbations = {MakeWindowSumClaim(2, 2), MakeWindowSumClaim(4, 2)};
  set.sensibilities = {0.5, 0.5};
  return set;
}

TEST(CounterTest, LowerRefutesDirection) {
  PerturbationSet set = TwoWindowContext();
  // original value 10; perturbation sums: 8 and 12.
  std::vector<double> x = {5, 5, 4, 4, 6, 6};
  EXPECT_TRUE(HasCounterargument(set, x, 10.0, 1.0,
                                 CounterDirection::kLowerRefutes));
  EXPECT_FALSE(HasCounterargument(set, x, 10.0, 3.0,
                                  CounterDirection::kLowerRefutes));
}

TEST(CounterTest, HigherRefutesDirection) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> x = {5, 5, 4, 4, 6, 6};
  EXPECT_TRUE(HasCounterargument(set, x, 10.0, 2.0,
                                 CounterDirection::kHigherRefutes));
  EXPECT_FALSE(HasCounterargument(set, x, 10.0, 2.5,
                                  CounterDirection::kHigherRefutes));
}

TEST(CounterTest, StrongestCounterPicksExtreme) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> x = {5, 5, 3, 3, 2, 2};  // sums 6 and 4
  EXPECT_EQ(StrongestCounter(set, x, 10.0, 1.0,
                             CounterDirection::kLowerRefutes),
            1);  // the [4..5] window at 4 is lowest
}

TEST(CounterTest, NoCounterReturnsMinusOne) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> x = {5, 5, 6, 6, 7, 7};
  EXPECT_EQ(StrongestCounter(set, x, 10.0, 0.0,
                             CounterDirection::kLowerRefutes),
            -1);
}

TEST(CleanUntilCounterTest, StopsAtFirstRevealedCounter) {
  PerturbationSet set = TwoWindowContext();
  // Current values hide the counter; the truth reveals window [2..3] = 5.
  std::vector<double> current = {5, 5, 6, 6, 7, 7};
  std::vector<double> truth = {5, 5, 2, 3, 7, 7};
  std::vector<double> costs = {1, 1, 1, 1, 1, 1};
  std::vector<int> order = {2, 3, 4, 5};
  CounterSearchResult result = CleanUntilCounter(
      set, current, truth, costs, order, 10.0, 1.0,
      CounterDirection::kLowerRefutes, 100.0);
  EXPECT_TRUE(result.found);
  // Cleaning object 2 alone reveals window sum 2 + 6 = 8 <= 10 - 1.
  EXPECT_EQ(result.num_cleaned, 1);
  EXPECT_DOUBLE_EQ(result.cost_used, 1.0);
  EXPECT_EQ(result.counter_claim, 0);
}

TEST(CleanUntilCounterTest, BudgetLimitsSearch) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> current = {5, 5, 6, 6, 7, 7};
  std::vector<double> truth = {5, 5, 2, 3, 7, 7};
  std::vector<double> costs = {1, 1, 5, 5, 1, 1};
  std::vector<int> order = {2, 3};
  // Margin 3 requires a window sum <= 7; cleaning object 2 alone reveals
  // 2 + 6 = 8 (no counter), and object 3 does not fit in the budget.
  CounterSearchResult result = CleanUntilCounter(
      set, current, truth, costs, order, 10.0, 3.0,
      CounterDirection::kLowerRefutes, 7.0);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.num_cleaned, 1);
}

TEST(CleanUntilCounterTest, AlreadyRefutableNeedsNoCleaning) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> current = {5, 5, 2, 2, 7, 7};
  std::vector<double> truth = current;
  CounterSearchResult result = CleanUntilCounter(
      set, current, truth, {1, 1, 1, 1, 1, 1}, {0, 1, 2, 3, 4, 5}, 10.0,
      1.0, CounterDirection::kLowerRefutes, 10.0);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.num_cleaned, 0);
  EXPECT_DOUBLE_EQ(result.cost_used, 0.0);
}

TEST(CleanUntilCounterTest, IrrelevantCleaningsDoNotTriggerCounter) {
  PerturbationSet set = TwoWindowContext();
  std::vector<double> current = {5, 5, 6, 6, 7, 7};
  std::vector<double> truth = {9, 9, 6, 6, 7, 7};  // truth raises original's
                                                   // objects only
  CounterSearchResult result = CleanUntilCounter(
      set, current, truth, {1, 1, 1, 1, 1, 1}, {0, 1}, 10.0, 1.0,
      CounterDirection::kLowerRefutes, 10.0);
  // The original's stated value stays 10 regardless of cleaning its inputs;
  // no perturbation dropped, so no counter.
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.num_cleaned, 2);
}

}  // namespace
}  // namespace factcheck
