#include <gtest/gtest.h>

#include "core/ev.h"
#include "core/maxpr.h"
#include "core/scenario.h"
#include "data/synthetic.h"
#include "dist/mvn.h"

namespace factcheck {
namespace {

TEST(ScenarioSetTest, NormalizesProbabilities) {
  ScenarioSet set({{{1.0, 2.0}, 2.0}, {{3.0, 4.0}, 6.0}});
  EXPECT_EQ(set.size(), 2);
  EXPECT_DOUBLE_EQ(set.scenario(0).prob, 0.25);
  EXPECT_DOUBLE_EQ(set.scenario(1).prob, 0.75);
}

TEST(ScenarioSetTest, FromIndependentMatchesEnumerationEvaluators) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3,
      {.size = 5, .min_support = 2, .max_support = 3});
  ScenarioSet joint = ScenarioSet::FromIndependent(p);
  LambdaQueryFunction f({0, 1, 2, 3, 4}, [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s += v;
    return s < 200 ? 1.0 : 0.0;
  });
  EXPECT_NEAR(joint.Mean(f), ExpectedValue(f, p), 1e-10);
  EXPECT_NEAR(joint.Variance(f), PriorVariance(f, p), 1e-10);
  // EV(T) agrees with the independent-case enumeration on every subset.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    int k = rng.UniformInt(0, 5);
    std::vector<int> cleaned = rng.SampleWithoutReplacement(5, k);
    EXPECT_NEAR(joint.ExpectedPosteriorVariance(f, cleaned),
                ExpectedPosteriorVariance(f, p, cleaned), 1e-10);
  }
}

TEST(ScenarioSetTest, PerfectlyCorrelatedPairResolvesTogether) {
  // Two coordinates always equal: cleaning either kills all variance of
  // their sum — the behaviour no independent model can express.
  ScenarioSet joint({{{0.0, 0.0}, 0.5}, {{10.0, 10.0}, 0.5}});
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  EXPECT_NEAR(joint.Variance(f), 100.0, 1e-9);
  EXPECT_NEAR(joint.ExpectedPosteriorVariance(f, {0}), 0.0, 1e-12);
  EXPECT_NEAR(joint.ExpectedPosteriorVariance(f, {1}), 0.0, 1e-12);
}

TEST(ScenarioSetTest, AnticorrelatedPairHasZeroSumVariance) {
  // X + Y constant: the sum is already certain; cleaning helps nothing.
  ScenarioSet joint({{{0.0, 10.0}, 0.5}, {{10.0, 0.0}, 0.5}});
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  EXPECT_NEAR(joint.Variance(f), 0.0, 1e-12);
  EXPECT_NEAR(joint.ExpectedPosteriorVariance(f, {0}), 0.0, 1e-12);
  // But each coordinate alone is uncertain.
  LinearQueryFunction first({0}, {1.0});
  EXPECT_NEAR(joint.Variance(first), 25.0, 1e-9);
}

TEST(ScenarioSetTest, EvMonotoneUnderCorrelation) {
  // Lemma 3.4 holds for arbitrary joints; verify on a correlated set.
  Rng rng(11);
  std::vector<Scenario> scenarios;
  for (int s = 0; s < 40; ++s) {
    double base = rng.Uniform(0, 10);
    scenarios.push_back({{base, base + rng.Uniform(-1, 1),
                          2 * base + rng.Uniform(-1, 1),
                          rng.Uniform(0, 10)},
                         rng.Uniform(0.1, 1.0)});
  }
  ScenarioSet joint(std::move(scenarios));
  LinearQueryFunction f({0, 1, 2, 3}, {1.0, -1.0, 0.5, 1.0});
  std::vector<int> cleaned;
  double prev = joint.ExpectedPosteriorVariance(f, cleaned);
  for (int i : {2, 0, 3, 1}) {
    cleaned.push_back(i);
    double next = joint.ExpectedPosteriorVariance(f, cleaned);
    EXPECT_LE(next, prev + 1e-9);
    prev = next;
  }
  EXPECT_NEAR(prev, 0.0, 1e-9);
}

TEST(ScenarioSetTest, SurpriseProbabilityConditionsOnUncleaned) {
  // Joint over (X0, X1) with X1 informative about X0.
  ScenarioSet joint({{{0.0, 5.0}, 0.25},
                     {{10.0, 5.0}, 0.25},
                     {{0.0, 7.0}, 0.45},
                     {{10.0, 7.0}, 0.05}});
  LinearQueryFunction f({0, 1}, {1.0, 0.0});
  // Clean X0 while X1 stays at 5: Pr[X0 < 5 | X1 = 5] = 0.5.
  EXPECT_NEAR(joint.SurpriseProbability(f, {99.0, 5.0}, {0}, 5.0), 0.5,
              1e-12);
  // With X1 = 7 the conditional tilts: 0.45 / 0.5 = 0.9.
  EXPECT_NEAR(joint.SurpriseProbability(f, {99.0, 7.0}, {0}, 5.0), 0.9,
              1e-12);
  // Inconsistent conditioning value -> 0.
  EXPECT_DOUBLE_EQ(joint.SurpriseProbability(f, {99.0, 6.0}, {0}, 5.0),
                   0.0);
}

TEST(ScenarioSetTest, SurpriseMatchesIndependentExactEvaluator) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 7,
      {.size = 4, .min_support = 2, .max_support = 3});
  ScenarioSet joint = ScenarioSet::FromIndependent(p);
  LinearQueryFunction f({0, 1, 2, 3}, {1, 1, 1, 1});
  double tau = 6.0;
  std::vector<int> cleaned = {0, 2};
  double threshold = f.Evaluate(p.CurrentValues()) - tau;
  // The exact evaluator conditions uncleaned coords at current values,
  // which must be support points for the joint to carry them: current
  // values of synthetic problems are means, so rebuild with medians.
  CleaningProblem pinned = p;
  for (int i = 0; i < p.size(); ++i) {
    pinned.set_current_value(i, p.object(i).dist.value(0));
  }
  double threshold2 = f.Evaluate(pinned.CurrentValues()) - tau;
  EXPECT_NEAR(
      joint.SurpriseProbability(f, pinned.CurrentValues(), cleaned,
                                threshold2),
      SurpriseProbabilityExact(f, pinned, cleaned, tau), 1e-10);
  (void)threshold;
}

TEST(ScenarioSetTest, GreedyExploitsCorrelation) {
  // Objects 0 and 1 perfectly correlated (cheap to exploit): cleaning one
  // resolves both; object 2 independent.  Budget 2 must pick one of the
  // pair plus object 2 — never both members of the pair.
  std::vector<Scenario> scenarios;
  for (double a : {0.0, 10.0}) {
    for (double c : {0.0, 6.0}) {
      scenarios.push_back({{a, a, c}, 0.25});
    }
  }
  ScenarioSet joint(std::move(scenarios));
  LinearQueryFunction f({0, 1, 2}, {1.0, 1.0, 1.0});
  Selection sel = joint.GreedyMinVar(f, {1.0, 1.0, 1.0}, 2.0);
  ASSERT_EQ(sel.cleaned.size(), 2u);
  EXPECT_TRUE(std::find(sel.cleaned.begin(), sel.cleaned.end(), 2) !=
              sel.cleaned.end());
  EXPECT_NEAR(joint.ExpectedPosteriorVariance(f, sel.cleaned), 0.0, 1e-9);
}

TEST(ScenarioSetTest, FromSamplesApproximatesMvnVariance) {
  Matrix cov = GeometricDecayCovariance({2.0, 1.0, 1.5}, 0.6);
  MultivariateNormal mvn({0, 0, 0}, cov);
  Rng rng(13);
  ScenarioSet joint = ScenarioSet::FromSamples(
      20000, rng, [&](Rng& r) { return mvn.Sample(r); });
  LinearQueryFunction f({0, 1, 2}, {1.0, -1.0, 0.5});
  Vector a = {1.0, -1.0, 0.5};
  EXPECT_NEAR(joint.Variance(f), mvn.LinearVariance(a),
              0.05 * mvn.LinearVariance(a) + 0.1);
}

}  // namespace
}  // namespace factcheck
