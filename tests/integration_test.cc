// End-to-end pipelines over the paper's datasets: fairness (modular),
// uniqueness/robustness (non-modular), counter-finding, and dependency.
// These assert the *shape* results of Section 4 at small scale.

#include <gtest/gtest.h>

#include "claims/counter.h"
#include "claims/ev_fast.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "data/adoptions.h"
#include "data/cdc.h"
#include "data/dependency.h"
#include "data/synthetic.h"
#include "knapsack/knapsack.h"
#include "montecarlo/simulator.h"
#include "relational/query.h"
#include "submodular/issc.h"

namespace factcheck {
namespace {

TEST(FairnessPipelineTest, GreedyMinVarTracksKnapsackOptimumOnAdoptions) {
  CleaningProblem problem = data::MakeAdoptions(2024);
  PerturbationSet context =
      WindowComparisonPerturbations(problem.size(), 4, 4, 1.5);
  double reference = context.original.Evaluate(problem.CurrentValues());
  LinearQueryFunction bias = BiasLinearFunction(context, reference);
  std::vector<double> variances = problem.Variances();
  std::vector<double> costs = problem.Costs();
  // Modular weights w_i = a_i^2 Var[X_i].
  std::vector<double> weights(problem.size(), 0.0);
  for (int i = 0; i < problem.size(); ++i) {
    double a = bias.Coefficient(i);
    weights[i] = a * a * variances[i];
  }
  for (double frac : {0.05, 0.15, 0.35}) {
    double budget = problem.TotalCost() * frac;
    Selection greedy =
        GreedyMinVarLinearIndependent(bias, variances, costs, budget);
    // Optimum via DP on scaled integer costs.
    std::vector<int> int_costs = ScaleCostsToInt(costs, 10.0);
    KnapsackSolution dp = MaxKnapsackDp(
        weights, int_costs, static_cast<int>(budget * 10.0));
    auto removed = [&](const std::vector<int>& t) {
      double acc = 0;
      for (int i : t) acc += weights[i];
      return acc;
    };
    // Greedy removes at least half of what the optimum removes (in
    // practice it is nearly indistinguishable; Fig 1).
    EXPECT_GE(removed(greedy.cleaned), 0.5 * removed(dp.selected));
    EXPECT_GE(removed(greedy.cleaned), 0.0);
  }
}

TEST(FairnessPipelineTest, GreedyMinVarBeatsRandomOnAdoptions) {
  CleaningProblem problem = data::MakeAdoptions(7);
  PerturbationSet context =
      WindowComparisonPerturbations(problem.size(), 4, 4, 1.5);
  double reference = context.original.Evaluate(problem.CurrentValues());
  LinearQueryFunction bias = BiasLinearFunction(context, reference);
  std::vector<double> variances = problem.Variances();
  std::vector<double> weights(problem.size(), 0.0);
  for (int i = 0; i < problem.size(); ++i) {
    double a = bias.Coefficient(i);
    weights[i] = a * a * variances[i];
  }
  auto remaining = [&](const std::vector<int>& t) {
    double acc = 0;
    for (double w : weights) acc += w;
    for (int i : t) acc -= weights[i];
    return acc;
  };
  double budget = problem.TotalCost() * 0.2;
  Selection greedy = GreedyMinVarLinearIndependent(
      bias, variances, problem.Costs(), budget);
  // Average Random over several runs.
  Rng rng(99);
  double random_avg = 0;
  const int kRuns = 30;
  for (int r = 0; r < kRuns; ++r) {
    Selection random = RandomSelect(problem.Costs(), budget, rng);
    random_avg += remaining(random.cleaned);
  }
  random_avg /= kRuns;
  EXPECT_LT(remaining(greedy.cleaned), random_avg);
}

TEST(UniquenessPipelineTest, GreedyMinVarAndBestBeatGreedyNaiveOnCdc) {
  CleaningProblem problem = data::MakeCdcFirearms(2024);
  // "last two years as low as Gamma": original = sum of 2016-2017; 7
  // non-overlapping 2-year windows as perturbations.
  PerturbationSet context = NonOverlappingWindowSumPerturbations(
      problem.size(), 2, problem.size() - 2, 1.5, 8);
  double reference = context.original.Evaluate(problem.CurrentValues());
  ClaimEvEvaluator evaluator(&problem, &context, QualityMeasure::kDuplicity,
                             reference);
  ClaimQualityFunction f(&context, QualityMeasure::kDuplicity, reference);
  double budget = problem.TotalCost() * 0.25;
  Selection minvar = evaluator.GreedyMinVar(budget);
  Selection naive = GreedyNaive(f, problem, budget);
  Selection best = BestMinVar(
      [&](const std::vector<int>& t) { return evaluator.EV(t); },
      problem.Costs(), budget);
  double ev_minvar = evaluator.EV(minvar.cleaned);
  double ev_naive = evaluator.EV(naive.cleaned);
  double ev_best = evaluator.EV(best.cleaned);
  EXPECT_LE(ev_minvar, ev_naive + 1e-9);
  EXPECT_LE(ev_best, ev_naive + 1e-9);
}

TEST(RobustnessPipelineTest, FragilityEvaluatorAgreesAndGreedyHelps) {
  CleaningProblem problem = data::MakeCdcFirearms(11);
  PerturbationSet context = NonOverlappingWindowSumPerturbations(
      problem.size(), 2, problem.size() - 2, 1.5, 8);
  double reference = context.original.Evaluate(problem.CurrentValues());
  ClaimEvEvaluator evaluator(&problem, &context, QualityMeasure::kFragility,
                             reference);
  double prior = evaluator.PriorVariance();
  EXPECT_GT(prior, 0.0);
  Selection sel = evaluator.GreedyMinVar(problem.TotalCost() * 0.3);
  EXPECT_LT(evaluator.EV(sel.cleaned), prior);
}

TEST(CounterPipelineTest, GreedyMaxPrFindsCounterCheaperThanNaive) {
  // URx scenario of Section 4.3: the claim picks the *lowest* window on
  // the current (noisy) data ("lowest in recent history"), so no counter
  // is visible without cleaning; the hidden truth may contain one.
  int won = 0, trials = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 40, width = 4;
    CleaningProblem problem = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = n, .min_support = 2, .max_support = 6});
    Rng rng(seed * 17);
    // The fact-checker sees a noisy current database (one draw), and the
    // truth is another hidden draw.
    CleaningProblem noisy = RedrawCurrentValues(problem, rng);
    InActionScenario scenario = MakeScenario(noisy, rng);
    std::vector<double> current = noisy.CurrentValues();
    // Original claim: the non-overlapping window with the lowest sum.
    int best_start = 0;
    double best_sum = 1e300;
    for (int start = 0; start + width <= n; start += width) {
      double sum = 0;
      for (int i = 0; i < width; ++i) sum += current[start + i];
      if (sum < best_sum) {
        best_sum = sum;
        best_start = start;
      }
    }
    PerturbationSet context =
        NonOverlappingWindowSumPerturbations(n, width, best_start, 1.5);
    double reference = best_sum;
    double margin = 0.5;
    if (!HasCounterargument(context, scenario.truth, reference, margin,
                            CounterDirection::kLowerRefutes)) {
      continue;  // no counter even in truth
    }
    ++trials;
    // MaxPr order: closed-form normal greedy on the bias query (surrogate
    // normal moments from the discrete distributions).
    LinearQueryFunction bias = BiasLinearFunction(context, reference);
    std::vector<double> means = noisy.Means();
    std::vector<double> stddevs(n);
    for (int i = 0; i < n; ++i) {
      stddevs[i] = std::sqrt(noisy.object(i).dist.Variance());
    }
    Selection maxpr =
        GreedyMaxPrNormal(bias, means, stddevs, current, noisy.Costs(),
                          noisy.TotalCost(), margin);
    ClaimQualityFunction dummy(&context, QualityMeasure::kBias, reference);
    Selection naive = GreedyNaive(dummy, noisy, noisy.TotalCost());
    std::vector<double> fallback = MaxPrModularWeights(bias, stddevs, n);
    for (int i = 0; i < n; ++i) fallback[i] /= noisy.Costs()[i];
    std::vector<int> maxpr_order = CompleteOrder(maxpr.order, fallback);
    std::vector<int> naive_order = CompleteOrder(naive.order, fallback);
    CounterSearchResult maxpr_result = CleanUntilCounter(
        context, current, scenario.truth, noisy.Costs(), maxpr_order,
        reference, margin, CounterDirection::kLowerRefutes,
        noisy.TotalCost());
    CounterSearchResult naive_result = CleanUntilCounter(
        context, current, scenario.truth, noisy.Costs(), naive_order,
        reference, margin, CounterDirection::kLowerRefutes,
        noisy.TotalCost());
    if (!maxpr_result.found) continue;
    if (!naive_result.found ||
        maxpr_result.cost_used <= naive_result.cost_used) {
      ++won;
    }
  }
  ASSERT_GT(trials, 0);
  // The bias-guided strategy should win (or tie) in the majority of worlds
  // (Section 4.3's 8% vs 21% budget gap at larger scale).
  EXPECT_GE(won * 2, trials);
}

TEST(DependencyPipelineTest, GreedyDepTracksOptUnderStrongCorrelation) {
  data::DependentDataset dataset = data::MakeDependentCdcFirearms(5, 0.7);
  // Use a short series for brute force: restrict to the first 10 years.
  int n = 10;
  std::vector<double> costs(n);
  for (int i = 0; i < n; ++i) {
    costs[i] = dataset.independent_view.object(i).cost;
  }
  std::vector<int> keep(n);
  for (int i = 0; i < n; ++i) keep[i] = i;
  Matrix sub_cov = dataset.model.covariance().Select(keep, keep);
  Vector sub_mean(n);
  for (int i = 0; i < n; ++i) sub_mean[i] = dataset.model.mean()[i];
  MultivariateNormal model(sub_mean, sub_cov);
  // Window-comparison fairness claim over the short series.
  PerturbationSet context = WindowComparisonPerturbations(n, 2, 2, 1.5);
  double reference = context.original.Evaluate(
      std::vector<double>(sub_mean.begin(), sub_mean.end()));
  LinearQueryFunction bias = BiasLinearFunction(context, reference);
  Vector a = bias.DenseWeights(n);
  SetObjective ev = [&](const std::vector<int>& t) {
    return model.ExpectedConditionalVariance(a, t);
  };
  double budget = 0.3 * std::accumulate(costs.begin(), costs.end(), 0.0);
  Selection dep = GreedyDep(bias, model, costs, budget);
  Selection opt = BruteForceMinimize(costs, budget, ev);
  double ev_dep = ev(dep.cleaned);
  double ev_opt = ev(opt.cleaned);
  double ev_empty = ev({});
  // GreedyDep recovers most of OPT's reduction (Fig 11a).
  EXPECT_LE(ev_dep - ev_opt, 0.35 * (ev_empty - ev_opt) + 1e-9);
  // And the unaware greedy is no better than GreedyDep here.
  Selection unaware = GreedyMinVarLinearIndependent(
      bias,
      [&] {
        std::vector<double> v(n);
        for (int i = 0; i < n; ++i) v[i] = sub_cov(i, i);
        return v;
      }(),
      costs, budget);
  EXPECT_LE(ev_dep, ev(unaware.cleaned) + 1e-9);
}

TEST(RelationalPipelineTest, QueryCompiledClaimsMatchDirectClaims) {
  UncertainTable table = data::MakeAdoptionsTable(7);
  CleaningProblem problem = table.ToCleaningProblem();
  // Giuliani-style window comparison via the relational layer.
  AggregateQuery q;
  q.AddTerm(+1.0, {Condition::IntBetween("year", 1993, 1996)});
  q.AddTerm(-1.0, {Condition::IntBetween("year", 1989, 1992)});
  Claim compiled = q.Compile(table, "giuliani");
  Claim direct = MakeWindowComparisonClaim(0, 4, 4);
  std::vector<double> u = problem.CurrentValues();
  EXPECT_NEAR(compiled.Evaluate(u), direct.Evaluate(u), 1e-9);
}

}  // namespace
}  // namespace factcheck
