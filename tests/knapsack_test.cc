#include <gtest/gtest.h>

#include <numeric>

#include "knapsack/knapsack.h"
#include "util/random.h"

namespace factcheck {
namespace {

double SumAt(const std::vector<double>& xs, const std::vector<int>& idx) {
  double acc = 0.0;
  for (int i : idx) acc += xs[i];
  return acc;
}

// Exhaustive optimum for cross-checking (n <= 20).
double BruteForceMaxValue(const std::vector<double>& values,
                          const std::vector<double>& costs, double capacity) {
  int n = static_cast<int>(values.size());
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double v = 0.0, c = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        v += values[i];
        c += costs[i];
      }
    }
    if (c <= capacity && v > best) best = v;
  }
  return best;
}

TEST(MaxKnapsackDpTest, KnownSmallInstance) {
  // Classic: values {60,100,120}, costs {10,20,30}, capacity 50 -> 220.
  KnapsackSolution sol =
      MaxKnapsackDp({60, 100, 120}, {10, 20, 30}, 50);
  EXPECT_DOUBLE_EQ(sol.total_value, 220);
  EXPECT_DOUBLE_EQ(sol.total_cost, 50);
  EXPECT_EQ(sol.selected, (std::vector<int>{1, 2}));
}

TEST(MaxKnapsackDpTest, ZeroCapacitySelectsNothing) {
  KnapsackSolution sol = MaxKnapsackDp({5, 7}, {1, 1}, 0);
  EXPECT_TRUE(sol.selected.empty());
  EXPECT_DOUBLE_EQ(sol.total_value, 0);
}

TEST(MaxKnapsackDpTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(1, 12);
    std::vector<double> values(n);
    std::vector<int> costs(n);
    std::vector<double> costs_d(n);
    for (int i = 0; i < n; ++i) {
      values[i] = rng.Uniform(0, 20);
      costs[i] = rng.UniformInt(1, 15);
      costs_d[i] = costs[i];
    }
    int capacity = rng.UniformInt(0, 40);
    KnapsackSolution sol = MaxKnapsackDp(values, costs, capacity);
    EXPECT_NEAR(sol.total_value,
                BruteForceMaxValue(values, costs_d, capacity), 1e-9);
    EXPECT_LE(sol.total_cost, capacity);
    EXPECT_NEAR(sol.total_value, SumAt(values, sol.selected), 1e-9);
  }
}

TEST(MaxKnapsackGreedyTest, PaperSection31Example) {
  // Section 3.1: beta(x1)=0.1, c1=0.0001; beta(x2)=10, c2=2; budget 2.
  // Density greedy alone would return 0.1; the final check must pick x2.
  KnapsackSolution sol = MaxKnapsackGreedy({0.1, 10.0}, {0.0001, 2.0}, 2.0);
  EXPECT_EQ(sol.selected, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sol.total_value, 10.0);
}

TEST(MaxKnapsackGreedyTest, TwoApproximationOnRandomInstances) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    int n = rng.UniformInt(1, 14);
    std::vector<double> values(n), costs(n);
    for (int i = 0; i < n; ++i) {
      values[i] = rng.Uniform(0, 10);
      costs[i] = rng.Uniform(0.1, 8);
    }
    double capacity = rng.Uniform(0.5, 25);
    KnapsackSolution sol = MaxKnapsackGreedy(values, costs, capacity);
    double opt = BruteForceMaxValue(values, costs, capacity);
    EXPECT_GE(sol.total_value, opt / 2.0 - 1e-9)
        << "trial " << trial << " opt " << opt;
    EXPECT_LE(sol.total_cost, capacity + 1e-9);
  }
}

TEST(MaxKnapsackFptasTest, ApproximationGuarantee) {
  Rng rng(303);
  for (double eps : {0.5, 0.1}) {
    for (int trial = 0; trial < 20; ++trial) {
      int n = rng.UniformInt(1, 12);
      std::vector<double> values(n), costs(n);
      for (int i = 0; i < n; ++i) {
        values[i] = rng.Uniform(0, 50);
        costs[i] = rng.Uniform(0.5, 10);
      }
      double capacity = rng.Uniform(1, 30);
      KnapsackSolution sol = MaxKnapsackFptas(values, costs, capacity, eps);
      double opt = BruteForceMaxValue(values, costs, capacity);
      EXPECT_GE(sol.total_value, (1.0 - eps) * opt - 1e-9);
      EXPECT_LE(sol.total_cost, capacity + 1e-9);
    }
  }
}

TEST(MaxKnapsackFptasTest, EmptyWhenNothingFits) {
  KnapsackSolution sol = MaxKnapsackFptas({5, 6}, {10, 20}, 1.0, 0.2);
  EXPECT_TRUE(sol.selected.empty());
}

TEST(MaxKnapsackBnbTest, MatchesBruteForceOnRealCosts) {
  Rng rng(505);
  for (int trial = 0; trial < 40; ++trial) {
    int n = rng.UniformInt(1, 14);
    std::vector<double> values(n), costs(n);
    for (int i = 0; i < n; ++i) {
      values[i] = rng.Uniform(0, 10);
      costs[i] = rng.Uniform(0.1, 7.5);
    }
    double capacity = rng.Uniform(0.5, 25);
    KnapsackSolution bnb = MaxKnapsackBranchAndBound(values, costs, capacity);
    EXPECT_NEAR(bnb.total_value, BruteForceMaxValue(values, costs, capacity),
                1e-9)
        << "trial " << trial;
    EXPECT_LE(bnb.total_cost, capacity + 1e-9);
    EXPECT_NEAR(bnb.total_value, SumAt(values, bnb.selected), 1e-9);
  }
}

TEST(MaxKnapsackBnbTest, MatchesDpOnIntegerCosts) {
  Rng rng(606);
  for (int trial = 0; trial < 20; ++trial) {
    int n = rng.UniformInt(1, 12);
    std::vector<double> values(n), costs_d(n);
    std::vector<int> costs_i(n);
    for (int i = 0; i < n; ++i) {
      values[i] = rng.Uniform(0, 30);
      costs_i[i] = rng.UniformInt(1, 12);
      costs_d[i] = costs_i[i];
    }
    int capacity = rng.UniformInt(0, 35);
    KnapsackSolution bnb =
        MaxKnapsackBranchAndBound(values, costs_d, capacity);
    KnapsackSolution dp = MaxKnapsackDp(values, costs_i, capacity);
    EXPECT_NEAR(bnb.total_value, dp.total_value, 1e-9) << "trial " << trial;
  }
}

TEST(MaxKnapsackBnbTest, SkipsWorthlessAndOversizedItems) {
  KnapsackSolution sol = MaxKnapsackBranchAndBound(
      {0.0, 5.0, 9.0}, {1.0, 100.0, 2.0}, 3.0);
  EXPECT_EQ(sol.selected, (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(sol.total_value, 9.0);
}

TEST(MaxKnapsackBnbTest, HandlesModerateSizeFast) {
  // 30 correlated items (the hard regime for plain B&B) still solve
  // instantly thanks to the fractional bound.
  Rng rng(707);
  int n = 30;
  std::vector<double> values(n), costs(n);
  for (int i = 0; i < n; ++i) {
    costs[i] = rng.Uniform(1, 10);
    values[i] = costs[i] + rng.Uniform(0, 0.5);  // value ~ cost
  }
  KnapsackSolution sol = MaxKnapsackBranchAndBound(values, costs, 50.0);
  EXPECT_GT(sol.total_value, 0.0);
  EXPECT_LE(sol.total_cost, 50.0 + 1e-9);
}

TEST(MinKnapsackDpTest, ComplementOfMaxKnapsack) {
  // Minimize value subject to covering demand.
  std::vector<double> values = {10, 1, 5, 3};
  std::vector<int> costs = {4, 3, 2, 5};
  KnapsackSolution sol = MinKnapsackDp(values, costs, 7);
  EXPECT_GE(sol.total_cost, 7);
  // Optimal: cover 7+ at minimum value: {1,3} cost 8 value 4.
  EXPECT_DOUBLE_EQ(sol.total_value, 4);
}

TEST(MinKnapsackDpTest, ZeroDemandSelectsNothing) {
  KnapsackSolution sol = MinKnapsackDp({1, 2}, {1, 1}, 0);
  EXPECT_TRUE(sol.selected.empty());
}

TEST(MinKnapsackDpTest, InfeasibleDemandSelectsAll) {
  KnapsackSolution sol = MinKnapsackDp({1, 2}, {1, 1}, 10);
  EXPECT_EQ(sol.selected.size(), 2u);
}

TEST(MinKnapsackDpTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(1, 10);
    std::vector<double> values(n);
    std::vector<int> costs(n);
    int total = 0;
    for (int i = 0; i < n; ++i) {
      values[i] = rng.Uniform(0, 20);
      costs[i] = rng.UniformInt(1, 10);
      total += costs[i];
    }
    int demand = rng.UniformInt(0, total);
    KnapsackSolution sol = MinKnapsackDp(values, costs, demand);
    // Brute force.
    double best = 1e300;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      double v = 0;
      int c = 0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          v += values[i];
          c += costs[i];
        }
      }
      if (c >= demand && v < best) best = v;
    }
    EXPECT_NEAR(sol.total_value, best, 1e-9) << "trial " << trial;
  }
}

TEST(MinKnapsackGreedyTest, CoversDemandAndPolishes) {
  std::vector<double> values = {10, 1, 5, 3};
  std::vector<double> costs = {4, 3, 2, 5};
  KnapsackSolution sol = MinKnapsackGreedy(values, costs, 7);
  EXPECT_GE(sol.total_cost, 7 - 1e-9);
  // Greedy should find a reasonable (not necessarily optimal) cover.
  EXPECT_LE(sol.total_value, 10.0);
}

TEST(MinKnapsackGreedyTest, PolishDropsRedundantItems) {
  // Items sorted by density put {0,1,2} in; dropping 0 keeps feasibility.
  std::vector<double> values = {5.0, 0.1, 0.1};
  std::vector<double> costs = {5.0, 5.0, 5.0};
  KnapsackSolution sol = MinKnapsackGreedy(values, costs, 10.0);
  EXPECT_DOUBLE_EQ(sol.total_value, 0.2);
  EXPECT_EQ(sol.selected.size(), 2u);
}

TEST(ScaleCostsToIntTest, RoundsUpAndClampsToOne) {
  std::vector<int> scaled = ScaleCostsToInt({0.0001, 1.4, 2.6}, 1.0);
  EXPECT_EQ(scaled, (std::vector<int>{1, 2, 3}));
  std::vector<int> fine = ScaleCostsToInt({0.25, 1.4}, 10.0);
  EXPECT_EQ(fine, (std::vector<int>{3, 14}));
  // Exact integers stay exact.
  EXPECT_EQ(ScaleCostsToInt({2.0, 5.0}, 1.0), (std::vector<int>{2, 5}));
}

}  // namespace
}  // namespace factcheck
