#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.h"

namespace factcheck {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(StdNormalCdf(-1.96), 0.024997895, 1e-6);
  EXPECT_NEAR(StdNormalCdf(-1.64), 0.0505, 5e-4);  // Lemma 3.3 threshold
}

TEST(NormalTest, PdfSymmetricAndPeaked) {
  EXPECT_NEAR(StdNormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_DOUBLE_EQ(StdNormalPdf(1.5), StdNormalPdf(-1.5));
  EXPECT_GT(StdNormalPdf(0.0), StdNormalPdf(0.5));
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {1e-6, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1 - 1e-6}) {
    double z = StdNormalQuantile(p);
    EXPECT_NEAR(StdNormalCdf(z), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalTest, QuantileSymmetry) {
  EXPECT_NEAR(StdNormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(StdNormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(StdNormalQuantile(0.2), -StdNormalQuantile(0.8), 1e-9);
}

TEST(NormalTest, ShiftedScaledDistribution) {
  NormalDistribution n{10.0, 2.0};
  EXPECT_NEAR(n.Cdf(10.0), 0.5, 1e-12);
  EXPECT_NEAR(n.Cdf(12.0), StdNormalCdf(1.0), 1e-12);
  EXPECT_NEAR(n.Quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(n.Pdf(10.0), StdNormalPdf(0.0) / 2.0, 1e-12);
}

TEST(QuantizeNormalTest, PreservesMeanExactly) {
  for (int points : {2, 4, 6, 10}) {
    DiscreteDistribution d = QuantizeNormal(100.0, 15.0, points);
    ASSERT_EQ(d.support_size(), points);
    EXPECT_NEAR(d.Mean(), 100.0, 1e-9) << points;
  }
}

TEST(QuantizeNormalTest, VarianceApproachesTrueVarianceFromBelow) {
  double prev = 0.0;
  for (int points : {2, 4, 8, 16, 64}) {
    DiscreteDistribution d = QuantizeNormal(0.0, 3.0, points);
    double var = d.Variance();
    EXPECT_LT(var, 9.0 + 1e-9);
    EXPECT_GE(var, prev - 1e-9);  // finer quantization keeps more variance
    prev = var;
  }
  EXPECT_NEAR(QuantizeNormal(0.0, 3.0, 64).Variance(), 9.0, 0.15);
}

TEST(QuantizeNormalTest, SinglePointOrZeroSigmaIsPointMass) {
  EXPECT_TRUE(QuantizeNormal(5.0, 2.0, 1).is_point_mass());
  EXPECT_TRUE(QuantizeNormal(5.0, 0.0, 6).is_point_mass());
  EXPECT_DOUBLE_EQ(QuantizeNormal(5.0, 0.0, 6).Mean(), 5.0);
}

TEST(QuantizeNormalTest, EqualProbabilityAtoms) {
  DiscreteDistribution d = QuantizeNormal(0.0, 1.0, 5);
  for (int k = 0; k < 5; ++k) EXPECT_NEAR(d.prob(k), 0.2, 1e-12);
}

TEST(QuantizeNormalTest, AtomsSymmetricAroundMean) {
  DiscreteDistribution d = QuantizeNormal(0.0, 1.0, 6);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(d.value(k), -d.value(5 - k), 1e-9);
  }
}

TEST(QuantizeLogNormalTest, SupportSizeAndPositivity) {
  DiscreteDistribution d = QuantizeLogNormalPaperStyle(0.0, 0.5, 6);
  ASSERT_EQ(d.support_size(), 6);
  for (int k = 0; k < 6; ++k) EXPECT_GT(d.value(k), 0.0);
}

TEST(QuantizeLogNormalTest, ValuesAreIncreasingQuantileEnds) {
  DiscreteDistribution d = QuantizeLogNormalPaperStyle(0.0, 0.8, 5);
  for (int k = 1; k < 5; ++k) EXPECT_GT(d.value(k), d.value(k - 1));
  // Right end of the first interval is the 20% quantile of LN(0, 0.8).
  EXPECT_NEAR(d.value(0), std::exp(0.8 * StdNormalQuantile(0.2)), 1e-9);
}

TEST(QuantizeLogNormalTest, SkewMakesUpperTailSparse) {
  // Log-normal densities decay in the upper tail, so the paper-style
  // density weighting puts less probability on the largest support point
  // than on the smallest.
  DiscreteDistribution d = QuantizeLogNormalPaperStyle(0.0, 1.0, 6);
  EXPECT_GT(d.prob(0), d.prob(5));
}

}  // namespace
}  // namespace factcheck
