// Failure-path behaviour of the serving stack: the SIGPIPE regression
// (a peer vanishing mid-response must never kill the daemon), graceful
// Stop() draining in-flight responses without tearing them, request
// deadlines rejected at the planner boundary with the engine memo left
// consistent, bounded-admission overload shedding, the update
// idempotency contract RequestSession retries lean on, and the
// journal-overrun full-rebuild fallback for streams past the problem's
// delta-journal capacity.
//
// Carries the `stress` label: the socket and drain tests are TSan
// targets.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta.h"
#include "core/engine.h"
#include "core/ev.h"
#include "core/greedy.h"
#include "core/problem.h"
#include "core/query_function.h"
#include "data/problem_io.h"
#include "serve/client.h"
#include "serve/json_value.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/cancel.h"
#include "util/json.h"

namespace factcheck {
namespace serve {
namespace {

CleaningProblem MakeProblem(int n = 6) {
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.25 * (i % 3);
    double mid = 10.0 + i;
    object.dist = DiscreteDistribution({mid - 1.0, mid, mid + 2.0 + 0.5 * i},
                                       {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

std::string RegisterLine(const std::string& name, const std::string& csv) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("op")
      .String("register")
      .Key("problem")
      .String(name)
      .Key("csv")
      .String(csv)
      .EndObject();
  return writer.str();
}

std::string PlanLine(const std::string& name, double budget) {
  return "{\"op\":\"plan\",\"problem\":\"" + name +
         "\",\"algo\":\"greedy_minvar\",\"budget\":" + std::to_string(budget) +
         "}";
}

std::string DeltaJson(const ProblemDelta& delta) {
  JsonWriter writer;
  WriteDeltaJson(delta, writer);
  return writer.str();
}

JsonValue ParseOk(const std::string& response) {
  std::string error;
  std::optional<JsonValue> value = JsonValue::Parse(response, &error);
  EXPECT_TRUE(value.has_value()) << error << " in " << response;
  EXPECT_TRUE(value->Find("ok") != nullptr && value->Find("ok")->boolean())
      << response;
  return std::move(*value);
}

std::vector<int> CleanedOf(const JsonValue& plan_response) {
  const JsonValue* cleaned =
      plan_response.Find("result")->Find("selection")->Find("cleaned");
  std::vector<int> out;
  for (const JsonValue& item : cleaned->array()) {
    out.push_back(static_cast<int>(item.number()));
  }
  return out;
}

std::int64_t RobustnessStat(PlanningService& service, const std::string& key) {
  JsonValue stats = ParseOk(service.HandleLine("{\"op\":\"stats\"}"));
  return static_cast<std::int64_t>(
      stats.Find("stats")->Find("robustness")->Find(key)->number());
}

std::string TestSocket(const char* tag) {
  return "/tmp/fc_robust_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// --- SIGPIPE --------------------------------------------------------------

// The regression: before MSG_NOSIGNAL, a peer that closed its socket
// before the response was written delivered SIGPIPE to the whole process
// and killed the daemon.  Now the send fails with EPIPE, the connection
// is reaped, and the next client is served normally.
TEST(SocketServer, PeerVanishingMidResponseDoesNotKillTheProcess) {
  PlanningService service;
  std::string error;
  ASSERT_TRUE(service.RegisterProblem(
      "p", data::ProblemToCsv(MakeProblem()), {}, {}, &error))
      << error;
  ServerOptions options;
  options.socket_path = TestSocket("sigpipe");
  options.threads = 2;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(&error)) << error;

  // Several rounds: fire a plan request and slam the connection shut
  // without reading, so the server's response send races our close and
  // regularly lands on a dead socket.
  const std::string request = PlanLine("p", 3.0) + "\n";
  for (int round = 0; round < 8; ++round) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    ::close(fd);  // gone before the response
  }

  // Still alive and serving: a well-behaved client gets a full response.
  LineClient client;
  ASSERT_TRUE(client.Connect(options.socket_path, &error)) << error;
  std::string response;
  ASSERT_TRUE(client.Call(PlanLine("p", 3.0), &response, &error)) << error;
  ParseOk(response);
  server.Stop();
}

// --- Graceful shutdown ----------------------------------------------------

// Stop() must drain: every response a client DOES receive is a complete
// JSON line, even when shutdown lands mid-burst — a torn response means
// the drain logic cut a handler off mid-write.
TEST(SocketServer, StopDrainsInFlightResponsesWithoutTearing) {
  PlanningService service;
  std::string error;
  ASSERT_TRUE(service.RegisterProblem(
      "p", data::ProblemToCsv(MakeProblem()), {}, {}, &error))
      << error;
  ServerOptions options;
  options.socket_path = TestSocket("drain");
  options.threads = 2;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(&error)) << error;

  std::atomic<bool> first_response{false};
  std::atomic<int> completed{0};
  std::thread burst([&] {
    LineClient client;
    std::string client_error;
    if (!client.Connect(options.socket_path, &client_error)) return;
    const std::string line = PlanLine("p", 3.0);
    for (int i = 0; i < 50; ++i) {
      std::string response;
      if (!client.Call(line, &response, &client_error)) break;
      // A received response is NEVER torn: it parses as a full document.
      std::string parse_error;
      std::optional<JsonValue> parsed =
          JsonValue::Parse(response, &parse_error);
      EXPECT_TRUE(parsed.has_value()) << parse_error << " in " << response;
      ++completed;
      first_response.store(true);
    }
  });
  // Stop mid-burst, after at least one request proved the loop is live.
  while (!first_response.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  burst.join();
  EXPECT_GE(completed.load(), 1);
}

// --- Deadlines ------------------------------------------------------------

// A born-expired deadline is rejected whole — plan AND update — with the
// failure counted, the epoch untouched, and the next undeadlined plan
// bit-identical to a fresh service's (the memo was never perturbed).
TEST(PlanningService, ExpiredDeadlineIsRejectedWholeAndCounted) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));

  const std::string expired_plan =
      "{\"op\":\"plan\",\"problem\":\"p\",\"algo\":\"greedy_minvar\","
      "\"budget\":3.0,\"deadline_ms\":0}";
  std::optional<JsonValue> rejected =
      JsonValue::Parse(service.HandleLine(expired_plan));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->Find("ok")->boolean());
  EXPECT_NE(rejected->Find("error")->string().find("deadline"),
            std::string::npos);

  const std::string expired_update =
      "{\"op\":\"update\",\"problem\":\"p\",\"deltas\":[" +
      DeltaJson(ProblemDelta::SetCost(0, 9.0)) + "],\"deadline_ms\":0}";
  std::optional<JsonValue> update_rejected =
      JsonValue::Parse(service.HandleLine(expired_update));
  ASSERT_TRUE(update_rejected.has_value());
  EXPECT_FALSE(update_rejected->Find("ok")->boolean());
  EXPECT_EQ(RobustnessStat(service, "deadline_exceeded"), 2);

  // The rejected update applied nothing...
  JsonValue stats = ParseOk(service.HandleLine("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.Find("stats")
                ->Find("problems")
                ->array()[0]
                .Find("epoch")
                ->number(),
            0.0);
  // ...and the rejected plan left no memo damage: same selection as a
  // service that never saw a deadline.
  PlanningService oracle;
  ParseOk(oracle.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  EXPECT_EQ(CleanedOf(ParseOk(service.HandleLine(PlanLine("p", 3.0)))),
            CleanedOf(ParseOk(oracle.HandleLine(PlanLine("p", 3.0)))));
}

// Engine-level cancellation at an exact round boundary: the partial run
// passes the memo's structural audit, and re-running the same engine to
// completion matches a never-cancelled engine bit-for-bit.
TEST(EvalEngine, CancelledRunLeavesTheMemoConsistent) {
  CleaningProblem problem = MakeProblem(8);
  std::vector<int> refs(problem.size());
  for (int i = 0; i < problem.size(); ++i) refs[i] = i;
  LinearQueryFunction f(refs, std::vector<double>(problem.size(), 1.0));
  const std::vector<double> costs = problem.Costs();
  const double budget = 4.0;

  for (bool lazy : {false, true}) {
    SCOPED_TRACE(lazy ? "lazy" : "plain");
    EvalEngine engine(MinVarObjective(f, problem),
                      OptimizeDirection::kMinimize);
    CountdownToken token(2);
    GreedyOptions cancelled;
    cancelled.cancel = &token;
    Selection partial = lazy ? engine.LazyGreedy(costs, budget, cancelled)
                             : engine.PlainGreedy(costs, budget, cancelled);

    std::string why;
    EXPECT_TRUE(engine.CheckMemoInvariants(&why)) << why;

    EvalEngine fresh(MinVarObjective(f, problem),
                     OptimizeDirection::kMinimize);
    Selection oracle = lazy ? fresh.LazyGreedy(costs, budget)
                            : fresh.PlainGreedy(costs, budget);
    // The cancelled run stopped early...
    EXPECT_LT(partial.cleaned.size(), oracle.cleaned.size());
    // ...and the warm rerun finishes it bit-identically to a cold run.
    Selection resumed = lazy ? engine.LazyGreedy(costs, budget)
                             : engine.PlainGreedy(costs, budget);
    EXPECT_EQ(resumed.cleaned, oracle.cleaned);
    EXPECT_EQ(resumed.order, oracle.order);
    EXPECT_EQ(resumed.cost, oracle.cost);  // bit-equal
    EXPECT_TRUE(engine.CheckMemoInvariants(&why)) << why;
  }
}

// An already-cancelled token stops the run before the first evaluation.
TEST(EvalEngine, BornExpiredTokenSelectsNothing) {
  CleaningProblem problem = MakeProblem();
  std::vector<int> refs(problem.size());
  for (int i = 0; i < problem.size(); ++i) refs[i] = i;
  LinearQueryFunction f(refs, std::vector<double>(problem.size(), 1.0));
  EvalEngine engine(MinVarObjective(f, problem), OptimizeDirection::kMinimize);
  DeadlineToken expired(0.0);
  GreedyOptions options;
  options.cancel = &expired;
  Selection sel = engine.PlainGreedy(problem.Costs(), 3.0, options);
  EXPECT_TRUE(sel.cleaned.empty());
  EXPECT_EQ(engine.stats().evaluations, 0);
}

// --- Overload shedding ----------------------------------------------------

TEST(SocketServer, BoundedAdmissionShedsWithRetryAfter) {
  PlanningService service;
  std::string error;
  ASSERT_TRUE(service.RegisterProblem(
      "p", data::ProblemToCsv(MakeProblem()), {}, {}, &error))
      << error;
  ServerOptions options;
  options.socket_path = TestSocket("shed");
  options.threads = 2;
  options.max_connections = 1;
  options.retry_after_ms = 7;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(&error)) << error;

  LineClient holder;
  ASSERT_TRUE(holder.Connect(options.socket_path, &error)) << error;
  std::string pong;
  ASSERT_TRUE(holder.Call("{\"op\":\"ping\"}", &pong, &error)) << error;
  EXPECT_EQ(server.live_connections(), 1);

  // The slot is taken: the next connection gets exactly one overload
  // line and a close — never a hung accept.
  LineClient rejected;
  ASSERT_TRUE(rejected.Connect(options.socket_path, &error)) << error;
  std::string response;
  ASSERT_TRUE(rejected.Call("{\"op\":\"ping\"}", &response, &error)) << error;
  std::optional<JsonValue> parsed = JsonValue::Parse(response, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->Find("ok")->boolean());
  EXPECT_EQ(parsed->Find("error")->string(), "overloaded");
  EXPECT_EQ(parsed->Find("retry_after_ms")->number(), 7.0);
  EXPECT_EQ(RobustnessStat(service, "sheds"), 1);

  // Capacity released: a RequestSession retries through the transient
  // and lands the plan.
  holder.Close();
  SessionOptions session_options;
  session_options.socket_path = options.socket_path;
  session_options.max_attempts = 6;
  session_options.backoff_initial_ms = 0.5;
  session_options.backoff_cap_ms = 4.0;
  session_options.counters = &service.robustness();
  RequestSession session(session_options);
  std::string planned;
  ASSERT_TRUE(session.Call(PlanLine("p", 3.0), &planned, &error)) << error;
  ParseOk(planned);
  server.Stop();
}

// --- Idempotency ----------------------------------------------------------

// The retry contract for updates: a batch stamped with idempotency_seq is
// applied once; the retried duplicate is acknowledged without reapplying;
// a sequence from the future is an error (a gap would mean lost updates).
TEST(PlanningService, IdempotencySequencesDedupeRetriedBatches) {
  PlanningService service;
  ParseOk(service.HandleLine(
      RegisterLine("p", data::ProblemToCsv(MakeProblem()))));
  const std::string batch =
      "{\"op\":\"update\",\"problem\":\"p\",\"idempotency_seq\":1,"
      "\"deltas\":[" +
      DeltaJson(ProblemDelta::SetCost(0, 9.0)) + "," +
      DeltaJson(ProblemDelta::SetCost(1, 8.0)) + "]}";

  JsonValue first = ParseOk(service.HandleLine(batch));
  EXPECT_EQ(first.Find("applied")->number(), 2.0);
  EXPECT_EQ(first.Find("epoch")->number(), 2.0);
  EXPECT_EQ(first.Find("replayed"), nullptr);

  // The retry: same seq, nothing reapplied, same resulting state.
  JsonValue replay = ParseOk(service.HandleLine(batch));
  EXPECT_EQ(replay.Find("applied")->number(), 0.0);
  ASSERT_NE(replay.Find("replayed"), nullptr);
  EXPECT_TRUE(replay.Find("replayed")->boolean());
  EXPECT_EQ(replay.Find("epoch")->number(), 2.0);
  EXPECT_EQ(RobustnessStat(service, "idempotent_replays"), 1);

  // A future sequence is a protocol error, applied nowhere.
  std::optional<JsonValue> ahead = JsonValue::Parse(service.HandleLine(
      "{\"op\":\"update\",\"problem\":\"p\",\"idempotency_seq\":7,"
      "\"deltas\":[" +
      DeltaJson(ProblemDelta::SetCost(2, 7.0)) + "]}"));
  ASSERT_TRUE(ahead.has_value());
  EXPECT_FALSE(ahead->Find("ok")->boolean());
  EXPECT_NE(ahead->Find("error")->string().find("ahead of the changelog"),
            std::string::npos);

  // The next in-order sequence still lands.
  JsonValue next = ParseOk(service.HandleLine(
      "{\"op\":\"update\",\"problem\":\"p\",\"idempotency_seq\":3,"
      "\"deltas\":[" +
      DeltaJson(ProblemDelta::SetCost(2, 7.0)) + "]}"));
  EXPECT_EQ(next.Find("applied")->number(), 1.0);
  EXPECT_EQ(next.Find("epoch")->number(), 3.0);
}

// --- Journal overrun ------------------------------------------------------

// A delta stream past CleaningProblem::kJournalCapacity (256) between two
// plans outruns the engines' epoch downdating: SyncEpoch must fall back
// to a full memo flush — counted as a full_rebuild — and the replanned
// selection must be bit-identical to a cold service planning the final
// state.
TEST(PlanningService, JournalOverrunFallsBackToFullRebuild) {
  CleaningProblem problem = MakeProblem();
  PlanningService service;
  ParseOk(service.HandleLine(RegisterLine("p", data::ProblemToCsv(problem))));
  const std::string plan = PlanLine("p", 3.0);
  ParseOk(service.HandleLine(plan));  // warm the session engine

  // 300 deltas in batches of 60 — far past the 256-record journal.
  CleaningProblem mutated = problem;
  for (int batch = 0; batch < 5; ++batch) {
    std::string deltas = "[";
    for (int i = 0; i < 60; ++i) {
      const int k = batch * 60 + i;
      ProblemDelta delta =
          ProblemDelta::SetCost(k % problem.size(), 1.0 + 0.003 * k);
      mutated.Apply(delta);
      if (i > 0) deltas += ",";
      deltas += DeltaJson(delta);
    }
    deltas += "]";
    ParseOk(service.HandleLine("{\"op\":\"update\",\"problem\":\"p\","
                               "\"deltas\":" +
                               deltas + "}"));
  }

  JsonValue replanned = ParseOk(service.HandleLine(plan));
  // The overrun was detected and the memo flushed wholesale, exactly
  // once, on the one warm engine.
  JsonValue stats = ParseOk(service.HandleLine("{\"op\":\"stats\"}"));
  const std::vector<JsonValue>& engines = stats.Find("stats")
                                              ->Find("problems")
                                              ->array()[0]
                                              .Find("engines")
                                              ->array();
  ASSERT_EQ(engines.size(), 1u);
  EXPECT_EQ(engines[0].Find("full_rebuilds")->number(), 1.0);

  PlanningService oracle;
  ParseOk(oracle.HandleLine(RegisterLine("p", data::ProblemToCsv(mutated))));
  EXPECT_EQ(CleanedOf(replanned),
            CleanedOf(ParseOk(oracle.HandleLine(plan))));
}

}  // namespace
}  // namespace serve
}  // namespace factcheck
