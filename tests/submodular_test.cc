#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/ev.h"
#include "data/synthetic.h"
#include "submodular/bicriteria.h"
#include "submodular/certify.h"
#include "submodular/curvature.h"
#include "submodular/issc.h"
#include "util/random.h"

namespace factcheck {
namespace {

// Modular helper: f(T) = sum of weights.
LambdaSetFunction Modular(std::vector<double> weights) {
  int n = static_cast<int>(weights.size());
  return LambdaSetFunction(n, [weights](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += weights[i];
    return acc;
  });
}

// Coverage function: cardinality of the union of per-element sets.
LambdaSetFunction Coverage(std::vector<std::vector<int>> sets) {
  int n = static_cast<int>(sets.size());
  return LambdaSetFunction(n, [sets](const std::vector<int>& t) {
    std::set<int> covered;
    for (int i : t) covered.insert(sets[i].begin(), sets[i].end());
    return static_cast<double>(covered.size());
  });
}

TEST(CertifyTest, ModularIsSubmodularAndMonotone) {
  Rng rng(1);
  LambdaSetFunction f = Modular({1, 2, 3, 4});
  EXPECT_FALSE(CertifySubmodular(f, 1e-9, rng).has_value());
  EXPECT_FALSE(CertifyNonDecreasing(f, 1e-9, rng).has_value());
}

TEST(CertifyTest, CoverageIsSubmodularNonDecreasing) {
  Rng rng(2);
  LambdaSetFunction f =
      Coverage({{1, 2}, {2, 3}, {3, 4, 5}, {1}, {6}});
  EXPECT_FALSE(CertifySubmodular(f, 1e-9, rng).has_value());
  EXPECT_FALSE(CertifyNonDecreasing(f, 1e-9, rng).has_value());
}

TEST(CertifyTest, SupermodularFunctionIsCaught) {
  Rng rng(3);
  // f(T) = |T|^2 is supermodular (strictly, for n >= 2), not submodular.
  LambdaSetFunction f(4, [](const std::vector<int>& t) {
    return static_cast<double>(t.size() * t.size());
  });
  auto violation = CertifySubmodular(f, 1e-9, rng);
  ASSERT_TRUE(violation.has_value());
  EXPECT_GT(violation->amount, 0.0);
  EXPECT_FALSE(violation->What().empty());
}

TEST(CertifyTest, IncreasingFunctionFailsNonIncreasing) {
  Rng rng(4);
  LambdaSetFunction f = Modular({1, 1});
  EXPECT_TRUE(CertifyNonIncreasing(f, 1e-9, rng).has_value());
}

// Lemma 3.5 as a property: EV of arbitrary (nonlinear) query functions is
// submodular and non-increasing when the X_i are independent.
class EvSubmodularityTest : public ::testing::TestWithParam<int> {};

TEST_P(EvSubmodularityTest, EvIsNonIncreasingAndSubmodular) {
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, seed,
      {.size = 5, .min_support = 2, .max_support = 3});
  double threshold = rng.Uniform(50, 250);
  LambdaQueryFunction f({0, 1, 2, 3, 4},
                        [threshold](const std::vector<double>& x) {
                          double s = 0;
                          for (double v : x) s += v;
                          return s < threshold ? 1.0 : 0.0;
                        });
  LambdaSetFunction ev(5, [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, problem, t);
  });
  Rng certify_rng(seed);
  EXPECT_FALSE(CertifyNonIncreasing(ev, 1e-9, certify_rng).has_value())
      << "seed " << seed;
  auto violation = CertifySubmodular(ev, 1e-9, certify_rng);
  EXPECT_FALSE(violation.has_value())
      << "seed " << seed << ": " << violation->What();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvSubmodularityTest, ::testing::Range(1, 13));

TEST(ComplementTest, Lemma36MappingFlipsMonotonicityKeepsSubmodularity) {
  Rng rng(5);
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 42,
      {.size = 5, .min_support = 2, .max_support = 3});
  LambdaQueryFunction f({0, 1, 2, 3, 4}, [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s += v;
    return s < 200.0 ? 1.0 : 0.0;
  });
  LambdaSetFunction ev(5, [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, problem, t);
  });
  ComplementSetFunction ev_bar(&ev);
  EXPECT_FALSE(CertifyNonDecreasing(ev_bar, 1e-9, rng).has_value());
  EXPECT_FALSE(CertifySubmodular(ev_bar, 1e-9, rng).has_value());
  // Value identity: EVbar(T) = EV(complement).
  EXPECT_DOUBLE_EQ(ev_bar.Value({0, 1}), ev.Value({2, 3, 4}));
  EXPECT_DOUBLE_EQ(ev_bar.Value({}), ev.Value({0, 1, 2, 3, 4}));
}

TEST(ComplementSetTest, BasicIdentities) {
  EXPECT_EQ(ComplementSet({}, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ComplementSet({0, 2}, 3), (std::vector<int>{1}));
  EXPECT_EQ(ComplementSet({0, 1, 2}, 3), (std::vector<int>{}));
}

TEST(CurvatureTest, ModularFunctionHasZeroCurvature) {
  LambdaSetFunction f = Modular({2, 3, 4});
  EXPECT_NEAR(SubmodularCurvature(f), 0.0, 1e-12);
}

TEST(CurvatureTest, FullyCurvedFunction) {
  // f(T) = min(|T|, 1): adding any element to V \ {i} gains nothing.
  LambdaSetFunction f(3, [](const std::vector<int>& t) {
    return t.empty() ? 0.0 : 1.0;
  });
  EXPECT_NEAR(SubmodularCurvature(f), 1.0, 1e-12);
}

TEST(CurvatureTest, CoverageCurvatureBetweenZeroAndOne) {
  LambdaSetFunction f = Coverage({{1, 2}, {2, 3}, {4}});
  double kappa = SubmodularCurvature(f);
  EXPECT_GE(kappa, 0.0);
  EXPECT_LE(kappa, 1.0);
  // Element 2 ({4}) is independent of the others; elements 0/1 overlap, so
  // curvature is strictly positive.
  EXPECT_GT(kappa, 0.0);
}

TEST(IsscTest, SolvesModularCaseExactly) {
  // With a modular objective, ISSC's bound is tight and the min-knapsack
  // DP solves the instance outright.
  std::vector<double> weights = {10, 1, 5, 3};
  std::vector<double> costs = {4, 3, 2, 5};
  LambdaSetFunction g = Modular(weights);
  std::vector<int> t = MinimizeSubmodularCover(g, costs, 7.0);
  EXPECT_DOUBLE_EQ(g.Value(t), 4.0);  // {1, 3}
}

TEST(IsscTest, ZeroDemandPicksEmptySet) {
  LambdaSetFunction g = Modular({1, 2});
  EXPECT_TRUE(MinimizeSubmodularCover(g, {1, 1}, 0.0).empty());
}

TEST(IsscTest, CoverageInstanceNearBruteForce) {
  Rng rng(17);
  LambdaSetFunction g =
      Coverage({{1, 2, 3}, {3, 4}, {5}, {1, 5, 6}, {7, 8}});
  std::vector<double> costs = {2, 1, 1, 3, 2};
  double demand = 5.0;
  std::vector<int> t = MinimizeSubmodularCover(g, costs, demand);
  double cost = 0;
  for (int i : t) cost += costs[i];
  EXPECT_GE(cost, demand - 1e-9);
  // Brute-force optimum for comparison.
  double best = 1e300;
  for (uint32_t mask = 0; mask < 32; ++mask) {
    std::vector<int> s;
    double c = 0;
    for (int i = 0; i < 5; ++i) {
      if (mask & (1u << i)) {
        s.push_back(i);
        c += costs[i];
      }
    }
    if (c >= demand) best = std::min(best, g.Value(s));
  }
  EXPECT_LE(g.Value(t), 2.0 * best + 1e-9);  // comfortably near optimal
}

TEST(BestMinVarTest, RespectsBudgetAndBeatsEmptySet) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 99,
      {.size = 6, .min_support = 2, .max_support = 3});
  LambdaQueryFunction f({0, 1, 2, 3, 4, 5}, [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s += v;
    return s < 280.0 ? 1.0 : 0.0;
  });
  SetObjective ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, problem, t);
  };
  double budget = problem.TotalCost() * 0.4;
  Selection best = BestMinVar(ev, problem.Costs(), budget);
  EXPECT_LE(best.cost, budget + 1e-6);
  EXPECT_LE(ev(best.cleaned), ev({}) + 1e-9);
}

TEST(BestMinVarTest, NearOptimalOnSmallInstances) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    CleaningProblem problem = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 6, .min_support = 2, .max_support = 3});
    LambdaQueryFunction f({0, 1, 2, 3, 4, 5},
                          [](const std::vector<double>& x) {
                            double s = 0;
                            for (double v : x) s += v;
                            return s < 250.0 ? 1.0 : 0.0;
                          });
    SetObjective ev = [&](const std::vector<int>& t) {
      return ExpectedPosteriorVariance(f, problem, t);
    };
    double budget = problem.TotalCost() * 0.5;
    Selection best = BestMinVar(ev, problem.Costs(), budget);
    Selection opt = BruteForceMinimize(problem.Costs(), budget, ev);
    double removable = ev({}) - ev(opt.cleaned);
    if (removable < 1e-12) continue;
    // Must recover a decent fraction of the removable variance.
    EXPECT_LE(ev(best.cleaned),
              ev(opt.cleaned) + 0.6 * removable + 1e-9)
        << "seed " << seed;
  }
}

TEST(BestMinVarTest, FullBudgetCleansEverything) {
  LambdaSetFunction g = Modular({1, 1, 1});
  SetObjective ev = [&](const std::vector<int>& t) {
    return 3.0 - static_cast<double>(t.size());
  };
  Selection best = BestMinVar(ev, {1, 1, 1}, 3.0);
  EXPECT_EQ(best.cleaned.size(), 3u);
}

TEST(BicriteriaTest, SizeBoundAndImprovement) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 123,
      {.size = 8, .min_support = 2, .max_support = 3});
  LambdaQueryFunction f({0, 1, 2, 3, 4, 5, 6, 7},
                        [](const std::vector<double>& x) {
                          double s = 0;
                          for (double v : x) s += v;
                          return s;
                        });
  SetObjective ev = [&](const std::vector<int>& t) {
    return ExpectedPosteriorVariance(f, problem, t);
  };
  BicriteriaResult result = BicriteriaMinVar(ev, 8, 4, 0.5);
  EXPECT_EQ(result.allowed_size, 8);
  EXPECT_LE(static_cast<int>(result.selection.cleaned.size()),
            result.allowed_size);
  // With k/(1-alpha) = 8 slots it can clean everything.
  EXPECT_NEAR(ev(result.selection.cleaned), 0.0, 1e-9);
}

}  // namespace
}  // namespace factcheck
