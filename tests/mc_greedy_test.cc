#include <gtest/gtest.h>

#include "core/ev.h"
#include "core/maxpr.h"
#include "data/synthetic.h"
#include "montecarlo/mc_greedy.h"

namespace factcheck {
namespace {

TEST(McGreedyTest, MinVarClosesMostOfTheExactGap) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    CleaningProblem p = data::MakeSynthetic(
        data::SyntheticFamily::kUniformRandom, seed,
        {.size = 6, .min_support = 2, .max_support = 3});
    LambdaQueryFunction f({0, 1, 2, 3, 4, 5},
                          [](const std::vector<double>& x) {
                            double s = 0;
                            for (double v : x) s += v;
                            return s < 250 ? 1.0 : 0.0;
                          });
    double budget = p.TotalCost() * 0.4;
    Rng rng(seed);
    Selection mc = GreedyMinVarMonteCarlo(f, p, budget, 300, 120, rng);
    Selection exact = GreedyMinVar(f, p, budget);
    double prior = PriorVariance(f, p);
    double ev_mc = ExpectedPosteriorVariance(f, p, mc.cleaned);
    double ev_exact = ExpectedPosteriorVariance(f, p, exact.cleaned);
    double exact_gain = prior - ev_exact;
    if (exact_gain < 1e-9) continue;
    // MC greedy should recover at least half of the exact greedy's gain.
    EXPECT_GE(prior - ev_mc, 0.5 * exact_gain) << "seed " << seed;
    EXPECT_LE(mc.cost, budget);
  }
}

TEST(McGreedyTest, MinVarDeterministicGivenSeed) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 9,
      {.size = 5, .min_support = 2, .max_support = 3});
  LinearQueryFunction f({0, 1, 2, 3, 4}, {1, 1, 1, 1, 1});
  Rng a(77), b(77);
  Selection sa = GreedyMinVarMonteCarlo(f, p, 10.0, 100, 50, a);
  Selection sb = GreedyMinVarMonteCarlo(f, p, 10.0, 100, 50, b);
  EXPECT_EQ(sa.cleaned, sb.cleaned);
}

TEST(McGreedyTest, MaxPrFindsTheClearlyBestSingleton) {
  // Example-5 geometry at larger margins so MC noise cannot flip the
  // decision: cleaning object 1 succeeds with probability 1/3 vs 1/5.
  std::vector<UncertainObject> objects(2);
  objects[0].current_value = 1.0;
  objects[0].dist =
      DiscreteDistribution({0, 0.5, 1, 1.5, 2}, {0.2, 0.2, 0.2, 0.2, 0.2});
  objects[0].cost = 1.0;
  objects[1].current_value = 1.0;
  objects[1].dist = DiscreteDistribution({1.0 / 3, 1.0, 5.0 / 3},
                                         {1.0 / 3, 1.0 / 3, 1.0 / 3});
  objects[1].cost = 1.0;
  CleaningProblem p(std::move(objects));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  Rng rng(5);
  Selection sel =
      GreedyMaxPrMonteCarlo(f, p, 1.0, 2.0 - 17.0 / 12, 20000, rng);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
}

TEST(McGreedyTest, MaxPrEstimateNearExactProbability) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 11,
      {.size = 5, .min_support = 2, .max_support = 4});
  LinearQueryFunction f({0, 1, 2, 3, 4}, {1, 1, 1, 1, 1});
  double tau = 10.0;
  Rng rng(13);
  Selection mc = GreedyMaxPrMonteCarlo(f, p, p.TotalCost(), tau, 8000, rng);
  if (mc.cleaned.empty()) return;  // nothing improved the objective
  double exact_of_mc = SurpriseProbabilityExact(f, p, mc.cleaned, tau);
  Selection exact = GreedyMaxPr(f, p, p.TotalCost(), tau);
  double exact_best = SurpriseProbabilityExact(f, p, exact.cleaned, tau);
  EXPECT_GE(exact_of_mc, exact_best - 0.1);
}

}  // namespace
}  // namespace factcheck
