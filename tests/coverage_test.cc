// Edge-case and configuration coverage that the per-module suites don't
// exercise: solver fallback paths, cost-blind variants, order completion,
// direction sign conventions, and degenerate budgets.

#include <gtest/gtest.h>

#include "claims/counter.h"
#include "claims/ev_fast.h"
#include "core/greedy.h"
#include "core/partial.h"
#include "data/synthetic.h"
#include "submodular/issc.h"
#include "util/random.h"

namespace factcheck {
namespace {

TEST(IsscFallbackTest, GreedyMinKnapsackSolverWorks) {
  // cost_scale <= 0 switches ISSC's inner solver from the DP to the
  // covering greedy; results must stay feasible and sane.
  std::vector<double> weights = {10, 1, 5, 3};
  std::vector<double> costs = {4, 3, 2, 5};
  LambdaSetFunction g(4, [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += weights[i];
    return acc;
  });
  IsscOptions options;
  options.cost_scale = 0.0;
  std::vector<int> t = MinimizeSubmodularCover(g, costs, 7.0, options);
  double cost = 0;
  for (int i : t) cost += costs[i];
  EXPECT_GE(cost, 7.0 - 1e-9);
  EXPECT_LE(g.Value(t), 8.0);  // well under taking everything (19)
}

TEST(AdaptiveGreedyTest, CostBlindVariantIgnoresCosts) {
  // Item 1 has a huge benefit but huge cost; cost-aware greedy prefers the
  // cheap item first, cost-blind goes straight for the big one.
  std::vector<double> gain = {1.0, 5.0};
  std::vector<double> costs = {1.0, 100.0};
  SetObjective objective = [&](const std::vector<int>& t) {
    double acc = 0;
    for (int i : t) acc += gain[i];
    return acc;
  };
  GreedyOptions blind;
  blind.cost_aware = false;
  Selection b = AdaptiveGreedyMaximize(costs, 101.0, objective, blind);
  ASSERT_FALSE(b.order.empty());
  EXPECT_EQ(b.order[0], 1);
  Selection aware = AdaptiveGreedyMaximize(costs, 101.0, objective);
  ASSERT_FALSE(aware.order.empty());
  EXPECT_EQ(aware.order[0], 0);
}

TEST(ZeroBudgetTest, EverySelectorReturnsEmpty) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3, {.size = 8});
  LinearQueryFunction f = LinearQueryFunction::FromDense(
      std::vector<double>(8, 1.0));
  Rng rng(3);
  EXPECT_TRUE(RandomSelect(p.Costs(), 0.0, rng).cleaned.empty());
  EXPECT_TRUE(GreedyNaive(f, p, 0.0).cleaned.empty());
  EXPECT_TRUE(GreedyMinVarLinearIndependent(f, p.Variances(), p.Costs(), 0.0)
                  .cleaned.empty());
  PerturbationSet context = NonOverlappingWindowSumPerturbations(8, 2, 0, 1.5);
  ClaimEvEvaluator evaluator(&p, &context, QualityMeasure::kDuplicity, 100.0);
  EXPECT_TRUE(evaluator.GreedyMinVar(0.0).cleaned.empty());
}

TEST(StaticGreedyTest, AllZeroBenefitsSelectNothing) {
  Selection sel = StaticGreedy({0, 0, 0}, {1, 1, 1}, 10.0);
  EXPECT_TRUE(sel.cleaned.empty());
}

TEST(CompleteOrderTest, AppendsMissingByFallbackScore) {
  std::vector<int> order = {2, 0};
  std::vector<double> score = {0.1, 0.9, 0.2, 0.5};
  std::vector<int> completed = CompleteOrder(order, score);
  EXPECT_EQ(completed, (std::vector<int>{2, 0, 1, 3}));
}

TEST(CompleteOrderTest, DeduplicatesAndHandlesEmpty) {
  std::vector<double> score = {0.3, 0.1};
  EXPECT_EQ(CompleteOrder({1, 1, 1}, score), (std::vector<int>{1, 0}));
  EXPECT_EQ(CompleteOrder({}, score), (std::vector<int>{0, 1}));
}

TEST(DirectionSignTest, BiasFlipsSignWithDirection) {
  // Under kLowerIsStronger, a perturbation above the reference weakens
  // the claim: bias contribution becomes negative.
  EXPECT_GT(QualityTransform(QualityMeasure::kBias, 12.0, 10.0, 1.0,
                             StrengthDirection::kHigherIsStronger),
            0.0);
  EXPECT_LT(QualityTransform(QualityMeasure::kBias, 12.0, 10.0, 1.0,
                             StrengthDirection::kLowerIsStronger),
            0.0);
}

TEST(DirectionSignTest, FragilityPenalizesOppositeTails) {
  // Higher-is-stronger: q below reference is fragile.
  EXPECT_GT(QualityTransform(QualityMeasure::kFragility, 8.0, 10.0, 1.0,
                             StrengthDirection::kHigherIsStronger),
            0.0);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kFragility, 12.0, 10.0, 1.0,
                       StrengthDirection::kHigherIsStronger),
      0.0);
  // Lower-is-stronger: q above reference is fragile.
  EXPECT_GT(QualityTransform(QualityMeasure::kFragility, 12.0, 10.0, 1.0,
                             StrengthDirection::kLowerIsStronger),
            0.0);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kFragility, 8.0, 10.0, 1.0,
                       StrengthDirection::kLowerIsStronger),
      0.0);
}

TEST(PartialCleanDeathTest, RetentionOneRejected) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 3, {.size = 2});
  EXPECT_DEATH(PartialClean(p, 0, 1.0, 1.0), "CHECK failed");
}

TEST(SelectionInvariantTest, FinalCheckPreservesOrderConsistency) {
  // When the final check swaps the set for a single item, order must
  // reflect the swap too.
  Selection sel = StaticGreedy({0.1, 10.0}, {0.0001, 2.0}, 2.0);
  EXPECT_EQ(sel.cleaned, (std::vector<int>{1}));
  EXPECT_EQ(sel.order, (std::vector<int>{1}));
}

TEST(EvaluatorReuseTest, SameEvaluatorServesManyBudgets) {
  // The figure benches reuse one evaluator across an entire budget sweep;
  // results must match fresh evaluators at every point.
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 11,
      {.size = 12, .min_support = 2, .max_support = 3});
  PerturbationSet context = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  ClaimEvEvaluator shared(&p, &context, QualityMeasure::kDuplicity, 150.0);
  for (double frac : {0.1, 0.3, 0.7}) {
    ClaimEvEvaluator fresh(&p, &context, QualityMeasure::kDuplicity, 150.0);
    double budget = p.TotalCost() * frac;
    Selection a = shared.GreedyMinVar(budget);
    Selection b = fresh.GreedyMinVar(budget);
    EXPECT_NEAR(shared.EV(a.cleaned), fresh.EV(b.cleaned), 1e-12);
  }
}

}  // namespace
}  // namespace factcheck
