#include <gtest/gtest.h>

#include "dist/discrete.h"

namespace factcheck {
namespace {

TEST(DiscreteTest, NormalizesProbabilities) {
  DiscreteDistribution d({1.0, 2.0}, {2.0, 6.0});
  EXPECT_DOUBLE_EQ(d.prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d.prob(1), 0.75);
}

TEST(DiscreteTest, SortsValues) {
  DiscreteDistribution d({3.0, 1.0, 2.0}, {0.2, 0.5, 0.3});
  EXPECT_DOUBLE_EQ(d.value(0), 1.0);
  EXPECT_DOUBLE_EQ(d.value(1), 2.0);
  EXPECT_DOUBLE_EQ(d.value(2), 3.0);
  EXPECT_DOUBLE_EQ(d.prob(0), 0.5);
}

TEST(DiscreteTest, MergesDuplicateValues) {
  DiscreteDistribution d({1.0, 1.0, 2.0}, {0.25, 0.25, 0.5});
  ASSERT_EQ(d.support_size(), 2);
  EXPECT_DOUBLE_EQ(d.prob(0), 0.5);
}

TEST(DiscreteTest, DropsZeroProbabilityAtoms) {
  DiscreteDistribution d({1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  ASSERT_EQ(d.support_size(), 2);
  EXPECT_DOUBLE_EQ(d.value(1), 3.0);
}

TEST(DiscreteTest, PointMass) {
  DiscreteDistribution d = DiscreteDistribution::PointMass(7.5);
  EXPECT_TRUE(d.is_point_mass());
  EXPECT_DOUBLE_EQ(d.Mean(), 7.5);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
}

TEST(DiscreteTest, MeanVarianceOfPaperExample5X1) {
  // X1 uniform over {0, 1/2, 1, 3/2, 2}: Var = 1/2 (Example 5).
  DiscreteDistribution x1({0, 0.5, 1, 1.5, 2},
                          {0.2, 0.2, 0.2, 0.2, 0.2});
  EXPECT_DOUBLE_EQ(x1.Mean(), 1.0);
  EXPECT_DOUBLE_EQ(x1.Variance(), 0.5);
}

TEST(DiscreteTest, MeanVarianceOfPaperExample5X2) {
  // X2 uniform over {1/3, 1, 5/3}: Var = 8/27 (Example 5).
  DiscreteDistribution x2({1.0 / 3, 1.0, 5.0 / 3},
                          {1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_NEAR(x2.Mean(), 1.0, 1e-12);
  EXPECT_NEAR(x2.Variance(), 8.0 / 27, 1e-12);
}

TEST(DiscreteTest, SecondMomentConsistentWithVariance) {
  DiscreteDistribution d({1.0, 4.0, 9.0}, {0.5, 0.3, 0.2});
  EXPECT_NEAR(d.Variance(), d.SecondMoment() - d.Mean() * d.Mean(), 1e-12);
}

TEST(DiscreteTest, CdfBelowVsAtOrBelow) {
  DiscreteDistribution d({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  EXPECT_DOUBLE_EQ(d.CdfBelow(2.0), 0.2);
  EXPECT_DOUBLE_EQ(d.CdfAtOrBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.CdfBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAtOrBelow(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.CdfBelow(10.0), 1.0);
}

TEST(DiscreteTest, ExpectationOfTransform) {
  DiscreteDistribution d({-1.0, 2.0}, {0.5, 0.5});
  double e = d.ExpectationOf([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(e, 2.5);
}

TEST(DiscreteDeathTest, EmptySupportAborts) {
  EXPECT_DEATH(DiscreteDistribution({}, {}), "CHECK failed");
}

TEST(DiscreteDeathTest, NegativeProbabilityAborts) {
  EXPECT_DEATH(DiscreteDistribution({1.0, 2.0}, {0.5, -0.5}), "CHECK failed");
}

TEST(DiscreteDeathTest, AllZeroProbabilitiesAbort) {
  EXPECT_DEATH(DiscreteDistribution({1.0}, {0.0}), "CHECK failed");
}

}  // namespace
}  // namespace factcheck
