// The deterministic fault-injection registry (util/fault.h): periodic
// and seeded schedules as pure functions of a point's hit counter, byte
// scaling for short/torn faults, arm/disarm semantics, and the build
// gate that compiles the FC_FAULT_POINT sites out of release binaries.
// The registry functions themselves are linkable (and tested) in every
// build — only the macro is gated — so this suite never skips.
//
// Carries the `stress` label: the sanitizer legs replay the registry's
// locking under TSan.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.h"

namespace factcheck {
namespace fault {
namespace {

// Every test owns the process-wide registry for its duration.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultRegistryTest, UnarmedPointsNeverFireOrCount) {
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(Hit("fault_test.unarmed", 100));
  }
  EXPECT_EQ(HitCount("fault_test.unarmed"), 0);
  EXPECT_EQ(InjectedCount(), 0);
}

TEST_F(FaultRegistryTest, PeriodicScheduleFiresOnTheExactHits) {
  Arm("fault_test.periodic", {.kind = FaultKind::kEintr,
                              .first = 2,
                              .period = 3,
                              .max_count = 2});
  std::vector<int> fired;
  for (int i = 0; i < 12; ++i) {
    if (Hit("fault_test.periodic", 10)) fired.push_back(i);
  }
  // first, first + period, then the max_count cap — hit 8 stays clean.
  EXPECT_EQ(fired, (std::vector<int>{2, 5}));
  EXPECT_EQ(HitCount("fault_test.periodic"), 12);
  EXPECT_EQ(InjectedCount(), 2);
}

TEST_F(FaultRegistryTest, UnlimitedPeriodicScheduleKeepsFiring) {
  Arm("fault_test.every", {.kind = FaultKind::kEnospc, .max_count = -1});
  for (int i = 0; i < 5; ++i) {
    Decision d = Hit("fault_test.every", 1);
    EXPECT_EQ(d.kind, FaultKind::kEnospc);
  }
  EXPECT_EQ(InjectedCount(), 5);
}

TEST_F(FaultRegistryTest, SeededScheduleIsReproducible) {
  const Schedule seeded = {.kind = FaultKind::kDisconnect,
                           .seed = 7,
                           .prob_num = 1,
                           .prob_den = 4};
  auto trace = [&] {
    Arm("fault_test.seeded", seeded);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(static_cast<bool>(Hit("fault_test.seeded", 10)));
    }
    return out;
  };
  const std::vector<bool> first = trace();
  // ~1/4 rate: some hits fire, most pass.
  int fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
  // Re-arming the same schedule replays the exact same sequence.
  EXPECT_EQ(trace(), first);
}

TEST_F(FaultRegistryTest, ShortAndTornFaultsScaleBytesByTheRatio) {
  Arm("fault_test.bytes", {.kind = FaultKind::kShortWrite,
                           .max_count = -1,
                           .bytes_num = 1,
                           .bytes_den = 2});
  Decision half = Hit("fault_test.bytes", 100);
  EXPECT_EQ(half.kind, FaultKind::kShortWrite);
  EXPECT_EQ(half.bytes, 50u);

  Arm("fault_test.bytes", {.kind = FaultKind::kTornWrite,
                           .max_count = -1,
                           .bytes_num = 3,
                           .bytes_den = 4});
  Decision torn = Hit("fault_test.bytes", 101);
  EXPECT_EQ(torn.kind, FaultKind::kTornWrite);
  EXPECT_EQ(torn.bytes, 75u);  // floor(101 * 3 / 4)

  // A zero denominator degrades to "nothing let through", never a crash.
  Arm("fault_test.bytes",
      {.kind = FaultKind::kTornWrite, .max_count = -1, .bytes_den = 0});
  EXPECT_EQ(Hit("fault_test.bytes", 100).bytes, 0u);
}

TEST_F(FaultRegistryTest, ReArmingResetsTheCounters) {
  Arm("fault_test.rearm",
      {.kind = FaultKind::kEintr, .first = 0, .period = 1, .max_count = 1});
  EXPECT_TRUE(Hit("fault_test.rearm", 1));
  EXPECT_FALSE(Hit("fault_test.rearm", 1));  // max_count spent
  Arm("fault_test.rearm",
      {.kind = FaultKind::kEintr, .first = 0, .period = 1, .max_count = 1});
  EXPECT_TRUE(Hit("fault_test.rearm", 1));  // hit/fired counters reset
  EXPECT_EQ(HitCount("fault_test.rearm"), 1);
}

TEST_F(FaultRegistryTest, DisarmStopsOnePointDisarmAllZeroesTheTotal) {
  Arm("fault_test.a",
      {.kind = FaultKind::kEintr, .first = 0, .period = 1, .max_count = -1});
  Arm("fault_test.b",
      {.kind = FaultKind::kEintr, .first = 0, .period = 1, .max_count = -1});
  EXPECT_TRUE(Hit("fault_test.a", 1));
  EXPECT_TRUE(Hit("fault_test.b", 1));
  Disarm("fault_test.a");
  EXPECT_FALSE(Hit("fault_test.a", 1));
  EXPECT_TRUE(Hit("fault_test.b", 1));
  EXPECT_EQ(InjectedCount(), 3);
  DisarmAll();
  EXPECT_EQ(InjectedCount(), 0);
  EXPECT_FALSE(Hit("fault_test.b", 1));
}

TEST_F(FaultRegistryTest, MacroIsCompiledOutUnlessInjectionIsOn) {
  Arm("fault_test.macro",
      {.kind = FaultKind::kEnospc, .first = 0, .period = 1, .max_count = -1});
  Decision d = FC_FAULT_POINT("fault_test.macro", 10);
  if (Enabled()) {
    EXPECT_EQ(d.kind, FaultKind::kEnospc);
    EXPECT_EQ(HitCount("fault_test.macro"), 1);
  } else {
    // The macro never consults the registry: no fault, no hit recorded.
    EXPECT_EQ(d.kind, FaultKind::kNone);
    EXPECT_EQ(HitCount("fault_test.macro"), 0);
  }
}

}  // namespace
}  // namespace fault
}  // namespace factcheck
