// Regression suite for util/json, focused on non-finite handling: every
// double that reaches a JSON document — PlanResult objective values and
// trajectories, experiment-cell metrics, wall clocks — must serialize as
// null when NaN/Inf so downstream consumers (BENCH_*.json diffing, the CI
// bench-smoke schema check) never see bare "nan"/"inf" tokens, which are
// invalid JSON.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/plan_result.h"
#include "exp/experiment.h"
#include "util/json.h"

namespace factcheck {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(kNan), "null");
  EXPECT_EQ(JsonNumber(-kNan), "null");
  EXPECT_EQ(JsonNumber(kInf), "null");
  EXPECT_EQ(JsonNumber(-kInf), "null");
}

TEST(JsonNumber, ShortestRoundTrip) {
  for (double value : {0.0, -0.0, 1.0, 0.1, 1.0 / 3.0, 1e-308, 1.7e308,
                       123456789.123456789, -2.5e-17}) {
    std::string text = JsonNumber(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

TEST(JsonWriter, NumberEmitsNullForNonFinite) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Number(kNan).Number(kInf).Number(-kInf).Number(1.5);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, Int64Extremes) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Int(std::numeric_limits<std::int64_t>::min());
  writer.Int(std::numeric_limits<std::int64_t>::max());
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[-9223372036854775808,9223372036854775807]");
}

// A PlanResult whose objective values went non-finite (e.g. an Inf
// objective from a degenerate custom evaluator) must stay valid JSON with
// nulls in the value positions.
TEST(PlanResultJson, NonFiniteObjectiveAndTrajectorySerializeAsNull) {
  PlanResult result;
  result.algorithm = "greedy_minvar";
  result.objective = "minvar";
  result.selection.cleaned = {0, 2};
  result.selection.order = {2, 0};
  result.selection.cost = kNan;
  result.labels = {"a", "b"};
  result.trajectory = {1.0, kInf, kNan};
  result.objective_value = kNan;
  result.has_objective_value = true;
  result.stats.evaluations = 7;
  result.stats.cache_hits = 3;
  result.wall_seconds = kInf;

  std::string json = result.ToJson();
  EXPECT_NE(json.find("\"cost\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"objective_value\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trajectory\":[1,null,null]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wall_ms\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"evaluations\":7"), std::string::npos) << json;
  // No bare non-finite tokens anywhere.
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

// Unset objective_value serializes as the same null, so readers treat
// "not computed" and "computed non-finite" uniformly.
TEST(PlanResultJson, MissingObjectiveIsNull) {
  PlanResult result;
  result.algorithm = "random";
  result.objective = "minvar";
  EXPECT_NE(result.ToJson().find("\"objective_value\":null"),
            std::string::npos);
}

TEST(ExperimentCellJson, NonFiniteMetricSerializesAsNull) {
  exp::ExperimentCell cell;
  cell.workload = "w";
  cell.algo = "a";
  cell.budget_fraction = kNan;  // absolute-budget sweeps have no fraction
  cell.budget = 3.0;
  cell.objective = kInf;
  cell.has_objective = true;
  JsonWriter writer;
  exp::WriteCellJson(cell, writer);
  std::string json = writer.str();
  EXPECT_NE(json.find("\"budget_fraction\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"objective\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("k\"ey").String("a\\b\n\t\x01");
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"k\\\"ey\":\"a\\\\b\\n\\t\\u0001\"}");
}

}  // namespace
}  // namespace factcheck
