#include <gtest/gtest.h>

#include <cmath>

#include "core/maxpr.h"
#include "dist/normal.h"
#include "util/random.h"

namespace factcheck {
namespace {

CleaningProblem Example5Problem() {
  // Example 5: X1 uniform {0,1/2,1,3/2,2}, X2 uniform {1/3,1,5/3}; u=(1,1).
  std::vector<UncertainObject> objects(2);
  objects[0].label = "x1";
  objects[0].current_value = 1.0;
  objects[0].dist =
      DiscreteDistribution({0, 0.5, 1, 1.5, 2}, {0.2, 0.2, 0.2, 0.2, 0.2});
  objects[0].cost = 1.0;
  objects[1].label = "x2";
  objects[1].current_value = 1.0;
  objects[1].dist = DiscreteDistribution({1.0 / 3, 1.0, 5.0 / 3},
                                         {1.0 / 3, 1.0 / 3, 1.0 / 3});
  objects[1].cost = 1.0;
  return CleaningProblem(std::move(objects));
}

TEST(MaxPrExactTest, Example5Probabilities) {
  // q = X1 + X2; f(u) = 2; target f(X) < 17/12, i.e., tau = 7/12.
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  double tau = 2.0 - 17.0 / 12;
  // Cleaning X1 only: Pr[X1 < 5/12] = Pr[X1 = 0] = 1/5.
  EXPECT_NEAR(SurpriseProbabilityExact(f, problem, {0}, tau), 0.2, 1e-12);
  // Cleaning X2 only: Pr[X2 < 5/12] = Pr[X2 = 1/3] = 1/3.
  EXPECT_NEAR(SurpriseProbabilityExact(f, problem, {1}, tau), 1.0 / 3,
              1e-12);
}

TEST(MaxPrExactTest, EmptySetHasZeroProbability) {
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(SurpriseProbabilityExact(f, problem, {}, 0.1), 0.0);
}

TEST(MaxPrExactTest, CleaningUnreferencedObjectGivesZero) {
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction f({0}, {1.0});
  EXPECT_DOUBLE_EQ(SurpriseProbabilityExact(f, problem, {1}, 0.1), 0.0);
}

TEST(MaxPrExactTest, ZeroTauCountsStrictDrops) {
  CleaningProblem problem = Example5Problem();
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  // tau = 0: Pr[X1 + 1 < 2] = Pr[X1 < 1] = 2/5.
  EXPECT_NEAR(SurpriseProbabilityExact(f, problem, {0}, 0.0), 0.4, 1e-12);
}

TEST(MaxPrNormalTest, CenteredClosedForm) {
  // Centered normals: Pr = Phi(-tau / sqrt(sum a_i^2 sigma_i^2)).
  LinearQueryFunction f({0, 1, 2}, {1.0, -2.0, 0.5});
  std::vector<double> means = {10, 20, 30};
  std::vector<double> stddevs = {1.0, 2.0, 4.0};
  std::vector<double> current = means;  // centered
  double tau = 3.0;
  double sd = std::sqrt(1.0 + 4.0 * 4.0 + 0.25 * 16.0);
  EXPECT_NEAR(
      SurpriseProbabilityNormal(f, means, stddevs, current, {0, 1, 2}, tau),
      StdNormalCdf(-tau / sd), 1e-12);
}

TEST(MaxPrNormalTest, MoreVarianceMeansMoreSurprise) {
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  std::vector<double> means = {0, 0};
  std::vector<double> current = {0, 0};
  double p1 = SurpriseProbabilityNormal(f, means, {1.0, 1.0}, current, {0},
                                        1.0);
  double p2 = SurpriseProbabilityNormal(f, means, {3.0, 1.0}, current, {0},
                                        1.0);
  EXPECT_GT(p2, p1);
}

TEST(MaxPrNormalTest, MeanShiftMatters) {
  // If the distribution sits below the current value, cleaning is likely
  // to reveal a lower value: shift enters the closed form.
  LinearQueryFunction f({0}, {1.0});
  std::vector<double> current = {10.0};
  double down = SurpriseProbabilityNormal(f, {8.0}, {1.0}, current, {0}, 0.5);
  double up = SurpriseProbabilityNormal(f, {12.0}, {1.0}, current, {0}, 0.5);
  EXPECT_NEAR(down, StdNormalCdf((-0.5 - (-2.0)) / 1.0), 1e-12);
  EXPECT_GT(down, 0.9);
  EXPECT_LT(up, 0.01);
}

TEST(MaxPrNormalTest, DegenerateVarianceIsStep) {
  LinearQueryFunction f({0}, {1.0});
  std::vector<double> current = {10.0};
  EXPECT_DOUBLE_EQ(
      SurpriseProbabilityNormal(f, {5.0}, {0.0}, current, {0}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(
      SurpriseProbabilityNormal(f, {9.5}, {0.0}, current, {0}, 1.0), 0.0);
}

TEST(MaxPrNormalTest, ExactEnumerationAgreesWithClosedFormOnQuantizedNormals) {
  // Quantize the normals finely; exact enumeration over the quantized
  // supports should approach the Gaussian closed form.
  std::vector<double> means = {100.0, 50.0};
  std::vector<double> stddevs = {5.0, 3.0};
  std::vector<UncertainObject> objects(2);
  for (int i = 0; i < 2; ++i) {
    objects[i].current_value = means[i];
    objects[i].dist = QuantizeNormal(means[i], stddevs[i], 64);
    objects[i].cost = 1.0;
  }
  CleaningProblem problem((std::vector<UncertainObject>(objects)));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  double tau = 4.0;
  double exact = SurpriseProbabilityExact(f, problem, {0, 1}, tau);
  double closed = SurpriseProbabilityNormal(f, means, stddevs, means, {0, 1},
                                            tau);
  EXPECT_NEAR(exact, closed, 0.01);
}

TEST(MaxPrModularWeightsTest, WeightsAreSquaredCoefficientTimesVariance) {
  LinearQueryFunction f({0, 2}, {2.0, -1.0});
  std::vector<double> w = MaxPrModularWeights(f, {3.0, 5.0, 2.0}, 3);
  EXPECT_DOUBLE_EQ(w[0], 4.0 * 9.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0 * 4.0);
}

}  // namespace
}  // namespace factcheck
