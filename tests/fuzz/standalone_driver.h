// Standalone corpus-replay driver shared by the fuzz harnesses.  When a
// harness is NOT built against libFuzzer (see CMakeLists.txt), its main()
// delegates here: every corpus file (arguments are files or directories)
// is replayed verbatim plus a fixed number of deterministic mutations.
// Mutation randomness comes from splitmix64 seeded by file content, never
// wall clock, so a CI failure reproduces locally byte for byte.
//
// The harness defines LLVMFuzzerTestOneInput and calls StandaloneMain
// with its tool name and a splice alphabet — the structural characters
// whose misplacement historically breaks that harness's parser.

#ifndef FACTCHECK_TESTS_FUZZ_STANDALONE_DRIVER_H_
#define FACTCHECK_TESTS_FUZZ_STANDALONE_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace factcheck_fuzz {

inline constexpr int kMutationsPerSeed = 64;

inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

// Byte flips, truncations, duplications, and splices from the harness's
// structural alphabet — the cheap mutations that historically break
// hand-rolled parsers.
inline void MutateAndRun(const std::string& seed, const char* splice) {
  const std::size_t splice_len = std::strlen(splice);
  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  for (char c : seed) state = state * 131 + static_cast<unsigned char>(c);
  for (int m = 0; m < kMutationsPerSeed; ++m) {
    std::string mutated = seed;
    switch (SplitMix64(&state) % 4) {
      case 0:  // flip one byte
        if (!mutated.empty()) {
          std::size_t pos = SplitMix64(&state) % mutated.size();
          mutated[pos] = static_cast<char>(SplitMix64(&state) & 0xff);
        }
        break;
      case 1:  // truncate
        mutated.resize(mutated.size() -
                       (mutated.empty()
                            ? 0
                            : SplitMix64(&state) % mutated.size()));
        break;
      case 2:  // duplicate a chunk in place
        if (!mutated.empty()) {
          std::size_t pos = SplitMix64(&state) % mutated.size();
          mutated.insert(pos, mutated.substr(pos / 2, 16));
        }
        break;
      default: {  // splice in a structural character
        std::size_t pos =
            mutated.empty() ? 0 : SplitMix64(&state) % mutated.size();
        mutated.insert(pos, 1, splice[SplitMix64(&state) % splice_len]);
        break;
      }
    }
    RunOne(mutated);
  }
}

inline int ReplayPath(const std::filesystem::path& path, const char* tool,
                      const char* splice) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read %s\n", tool,
                 path.string().c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  RunOne(bytes);
  MutateAndRun(bytes, splice);
  return 0;
}

inline int StandaloneMain(int argc, char** argv, const char* tool,
                          const char* splice) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s CORPUS_FILE_OR_DIR...\n"
                 "(replays each input plus %d deterministic mutations)\n",
                 tool, kMutationsPerSeed);
    return 2;
  }
  int inputs = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      // Sorted replay so runs are order-deterministic across filesystems.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (ReplayPath(file, tool, splice) != 0) return 1;
        ++inputs;
      }
    } else {
      if (ReplayPath(path, tool, splice) != 0) return 1;
      ++inputs;
    }
  }
  std::printf("%s: %d seed(s) x %d mutations OK\n", tool, inputs,
              kMutationsPerSeed);
  return 0;
}

}  // namespace factcheck_fuzz

#endif  // FACTCHECK_TESTS_FUZZ_STANDALONE_DRIVER_H_
