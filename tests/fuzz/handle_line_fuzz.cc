// Fuzz harness for PlanningService::HandleLine (serve/service.h) — the
// full request surface a connected client controls, one JSON line at a
// time.  The contract under fuzzing: HandleLine never crashes, never
// aborts, and ALWAYS returns exactly one well-formed JSON object with a
// boolean "ok" member — malformed requests, unknown ops, bad deltas,
// out-of-range budgets, deadline/idempotency fields included.
//
// Each input runs against a fresh service with one small registered
// problem ("p"), so deep plan/update paths are reachable and no state
// leaks between inputs.  Expensive knobs an attacker-controlled line
// could turn (mc_samples) are capped before dispatch — the harness
// bounds runtime, not behaviour.
//
// Build modes match json_value_fuzz.cc: libFuzzer under Clang with
// FACTCHECK_FUZZ_LIBFUZZER, otherwise the shared deterministic
// corpus-replay driver in standalone_driver.h.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/json_value.h"
#include "serve/service.h"

namespace {

constexpr char kCsv[] =
    "label,current,cost,support,probs\n"
    "a,10,1,9;10;12,0.25;0.5;0.25\n"
    "b,11,1.5,10;11;13,0.25;0.5;0.25\n"
    "c,12,2,11;12;14,0.25;0.5;0.25\n"
    "d,13,1.25,12;13;15,0.25;0.5;0.25\n";

// Skip inputs that would merely be slow (huge Monte Carlo sample counts),
// not interesting: runtime bounding, orthogonal to the crash contract.
bool TooExpensive(const std::string& line) {
  std::string error;
  std::optional<factcheck::serve::JsonValue> json =
      factcheck::serve::JsonValue::Parse(line, &error);
  if (!json.has_value() || !json->is_object()) return false;
  const factcheck::serve::JsonValue* samples = json->Find("mc_samples");
  return samples != nullptr && samples->is_number() &&
         samples->number() > 1024;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 12)) return 0;  // bound parse cost, not protocol logic
  std::string line(reinterpret_cast<const char*>(data), size);
  if (TooExpensive(line)) return 0;

  factcheck::serve::PlanningService service;
  std::string error;
  if (!service.RegisterProblem("p", kCsv, {}, {}, &error)) __builtin_trap();

  const std::string response = service.HandleLine(line);
  if (response.empty()) __builtin_trap();
  std::string parse_error;
  std::optional<factcheck::serve::JsonValue> json =
      factcheck::serve::JsonValue::Parse(response, &parse_error);
  if (!json.has_value()) __builtin_trap();  // responses are always JSON
  if (!json->is_object()) __builtin_trap();
  const factcheck::serve::JsonValue* ok = json->Find("ok");
  if (ok == nullptr || !ok->is_bool()) __builtin_trap();
  return 0;
}

#ifndef FACTCHECK_FUZZ_LIBFUZZER

#include "standalone_driver.h"

int main(int argc, char** argv) {
  return factcheck_fuzz::StandaloneMain(
      argc, argv, "handle_line_fuzz",
      "{}[]\",:0123456789.-\nopplanupdate");
}

#endif  // FACTCHECK_FUZZ_LIBFUZZER
