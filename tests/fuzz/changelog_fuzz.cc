// Fuzz harness for the changelog replay path (serve/changelog.h) — the
// bytes a restarting PlanningService trusts least.  Each input is treated
// both as a <name>.log file replayed onto a fixed base problem and as a
// <name>.snapshot document.  Replay must be fail-closed and all-or-
// nothing: any defect (torn line, malformed JSON, duplicate / out-of-
// order / gapped sequence numbers, a delta the problem rejects) returns
// false with a diagnostic and leaves the problem bit-identical to the
// base — never a crash, never a half-applied suffix.  On success the
// epoch must equal the number of applied records.
//
// Build modes match json_value_fuzz.cc: libFuzzer under Clang with
// FACTCHECK_FUZZ_LIBFUZZER, otherwise the shared deterministic
// corpus-replay driver in standalone_driver.h.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"
#include "data/problem_io.h"
#include "dist/discrete.h"
#include "serve/changelog.h"

namespace {

using factcheck::CleaningProblem;
using factcheck::DiscreteDistribution;
using factcheck::UncertainObject;

CleaningProblem MakeBaseProblem() {
  std::vector<UncertainObject> objects;
  for (int i = 0; i < 6; ++i) {
    UncertainObject object;
    object.label = "o" + std::to_string(i);
    object.current_value = 10.0 + i;
    object.cost = 1.0 + 0.25 * (i % 3);
    double mid = 10.0 + i;
    object.dist = DiscreteDistribution({mid - 1.0, mid, mid + 2.0 + 0.5 * i},
                                       {0.25, 0.5, 0.25});
    objects.push_back(std::move(object));
  }
  return CleaningProblem(std::move(objects));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;  // bound record count, not replay logic
  std::string text(reinterpret_cast<const char*>(data), size);

  // The base problem's serialization, for the untouched-on-failure check.
  static const CleaningProblem* base = new CleaningProblem(MakeBaseProblem());
  static const std::string* base_csv =
      new std::string(factcheck::data::ProblemToCsv(*base));

  CleaningProblem problem = *base;
  std::int64_t last_seq = -1;
  std::string error;
  if (factcheck::serve::ReplayChangelog(text, /*base_seq=*/0, &problem,
                                        &last_seq, &error)) {
    // Applied count == final sequence number == epoch (base_seq is 0 and
    // applied records are contiguous from 1).
    if (last_seq < 0) __builtin_trap();
    if (problem.epoch() != last_seq) __builtin_trap();
  } else {
    if (error.empty()) __builtin_trap();  // rejection must carry a reason
    if (factcheck::data::ProblemToCsv(problem) != *base_csv) {
      __builtin_trap();  // fail-closed: nothing half-applied
    }
  }

  // The same bytes as a snapshot document: DecodeSnapshot never aborts.
  std::int64_t seq = 0;
  std::string csv;
  std::vector<int> refs;
  std::vector<double> coeffs;
  error.clear();
  if (!factcheck::serve::DecodeSnapshot(text, &seq, &csv, &refs, &coeffs,
                                        &error) &&
      error.empty()) {
    __builtin_trap();
  }
  return 0;
}

#ifndef FACTCHECK_FUZZ_LIBFUZZER

#include "standalone_driver.h"

int main(int argc, char** argv) {
  return factcheck_fuzz::StandaloneMain(argc, argv, "changelog_fuzz",
                                        "{}[]\",:0123456789.-\nseq");
}

#endif  // FACTCHECK_FUZZ_LIBFUZZER
