// libFuzzer harness for the strict RFC-8259 parser behind the serving
// protocol (serve/json_value.h).  The parser is the service's first
// contact with untrusted bytes, so it gets the adversarial treatment:
// Parse must never crash, overflow the stack (depth cap), or leave a
// half-built value — on success every accessor of the resulting tree is
// walked to shake out inconsistent Kind/payload states.
//
// Two build modes (CMakeLists.txt):
//   * Clang + FACTCHECK_FUZZ_LIBFUZZER: -fsanitize=fuzzer provides main;
//     run as `json_value_fuzz -runs=N tests/fuzz/corpus`.
//   * Everything else: the shared standalone driver (standalone_driver.h)
//     replays each corpus file plus a fixed set of deterministic
//     mutations per seed — the bounded fuzz-smoke the sanitizer CI job
//     runs.

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/json_value.h"

namespace {

using factcheck::serve::JsonValue;

// Touch every accessor reachable from `value` so latent invariant
// violations (wrong kind tag, dangling string) surface under ASan.
std::size_t Exercise(const JsonValue& value) {
  std::size_t nodes = 1;
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      break;
    case JsonValue::Kind::kBool:
      (void)value.boolean();
      break;
    case JsonValue::Kind::kNumber:
      (void)value.number();
      break;
    case JsonValue::Kind::kString:
      (void)value.string().size();
      break;
    case JsonValue::Kind::kArray:
      for (const JsonValue& item : value.array()) nodes += Exercise(item);
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.object()) {
        (void)value.Find(key);
        nodes += Exercise(member);
      }
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  if (auto value = JsonValue::Parse(text, &error)) {
    Exercise(*value);
  } else if (error.empty()) {
    __builtin_trap();  // failure must always carry a diagnostic
  }
  return 0;
}

#ifndef FACTCHECK_FUZZ_LIBFUZZER

#include "standalone_driver.h"

int main(int argc, char** argv) {
  return factcheck_fuzz::StandaloneMain(argc, argv, "json_value_fuzz",
                                        "{}[]\",:0.eE+-\\u");
}

#endif  // FACTCHECK_FUZZ_LIBFUZZER
