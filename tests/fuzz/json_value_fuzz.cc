// libFuzzer harness for the strict RFC-8259 parser behind the serving
// protocol (serve/json_value.h).  The parser is the service's first
// contact with untrusted bytes, so it gets the adversarial treatment:
// Parse must never crash, overflow the stack (depth cap), or leave a
// half-built value — on success every accessor of the resulting tree is
// walked to shake out inconsistent Kind/payload states.
//
// Two build modes (CMakeLists.txt):
//   * Clang + FACTCHECK_FUZZ_LIBFUZZER: -fsanitize=fuzzer provides main;
//     run as `json_value_fuzz -runs=N tests/fuzz/corpus`.
//   * Everything else: the standalone driver below replays each corpus
//     file plus a fixed set of deterministic mutations per seed — the
//     bounded fuzz-smoke the sanitizer CI job runs.  Mutation randomness
//     comes from splitmix64 seeded by file content, never wall clock, so
//     a CI failure reproduces locally byte for byte.

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/json_value.h"

namespace {

using factcheck::serve::JsonValue;

// Touch every accessor reachable from `value` so latent invariant
// violations (wrong kind tag, dangling string) surface under ASan.
std::size_t Exercise(const JsonValue& value) {
  std::size_t nodes = 1;
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      break;
    case JsonValue::Kind::kBool:
      (void)value.boolean();
      break;
    case JsonValue::Kind::kNumber:
      (void)value.number();
      break;
    case JsonValue::Kind::kString:
      (void)value.string().size();
      break;
    case JsonValue::Kind::kArray:
      for (const JsonValue& item : value.array()) nodes += Exercise(item);
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.object()) {
        (void)value.Find(key);
        nodes += Exercise(member);
      }
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  if (auto value = JsonValue::Parse(text, &error)) {
    Exercise(*value);
  } else if (error.empty()) {
    __builtin_trap();  // failure must always carry a diagnostic
  }
  return 0;
}

#ifndef FACTCHECK_FUZZ_LIBFUZZER

// Standalone driver: replay corpus files (arguments are files or
// directories) and a fixed number of deterministic mutations of each.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

constexpr int kMutationsPerSeed = 64;

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

// Byte flips, truncations, duplications, and digit/quote splices — the
// cheap mutations that historically break recursive-descent parsers.
void MutateAndRun(const std::string& seed) {
  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  for (char c : seed) state = state * 131 + static_cast<unsigned char>(c);
  for (int m = 0; m < kMutationsPerSeed; ++m) {
    std::string mutated = seed;
    switch (SplitMix64(&state) % 4) {
      case 0:  // flip one byte
        if (!mutated.empty()) {
          std::size_t pos = SplitMix64(&state) % mutated.size();
          mutated[pos] = static_cast<char>(SplitMix64(&state) & 0xff);
        }
        break;
      case 1:  // truncate
        mutated.resize(mutated.size() -
                       (mutated.empty()
                            ? 0
                            : SplitMix64(&state) % mutated.size()));
        break;
      case 2:  // duplicate a chunk in place
        if (!mutated.empty()) {
          std::size_t pos = SplitMix64(&state) % mutated.size();
          mutated.insert(pos, mutated.substr(pos / 2, 16));
        }
        break;
      default: {  // splice in a structural character
        static constexpr char kSplice[] = "{}[]\",:0.eE+-\\u";
        std::size_t pos =
            mutated.empty() ? 0 : SplitMix64(&state) % mutated.size();
        mutated.insert(pos, 1,
                       kSplice[SplitMix64(&state) % (sizeof(kSplice) - 1)]);
        break;
      }
    }
    RunOne(mutated);
  }
}

int ReplayPath(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_value_fuzz: cannot read %s\n",
                 path.string().c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  RunOne(bytes);
  MutateAndRun(bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: json_value_fuzz CORPUS_FILE_OR_DIR...\n"
                 "(replays each input plus %d deterministic mutations)\n",
                 kMutationsPerSeed);
    return 2;
  }
  int inputs = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      // Sorted replay so runs are order-deterministic across filesystems.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (ReplayPath(file) != 0) return 1;
        ++inputs;
      }
    } else {
      if (ReplayPath(path) != 0) return 1;
      ++inputs;
    }
  }
  std::printf("json_value_fuzz: %d seed(s) x %d mutations OK\n", inputs,
              kMutationsPerSeed);
  return 0;
}

#endif  // FACTCHECK_FUZZ_LIBFUZZER
