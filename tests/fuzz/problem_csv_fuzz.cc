// Fuzz harness for the CSV problem loader (data/problem_io.h) — the
// other channel through which untrusted bytes become a CleaningProblem
// (register requests carry the problem as CSV, and restored snapshots
// re-parse it at startup).  ProblemFromCsv must never crash or trip an
// FC_CHECK: every malformed row — bad numbers, non-finite values,
// mismatched support/prob lengths, non-positive costs, negative
// probabilities — is rejected with a diagnostic BEFORE any
// DiscreteDistribution is constructed.  On success the parse must be a
// serialization fixed point: ProblemToCsv re-parses to byte-identical
// CSV (the %.17g round-trip contract the snapshot codec leans on).
//
// Build modes match json_value_fuzz.cc: libFuzzer under Clang with
// FACTCHECK_FUZZ_LIBFUZZER, otherwise the shared deterministic
// corpus-replay driver in standalone_driver.h.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/problem_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;  // bound row count, not parser logic
  std::string csv(reinterpret_cast<const char*>(data), size);
  std::string error;
  std::optional<factcheck::CleaningProblem> problem =
      factcheck::data::ProblemFromCsv(csv, &error);
  if (!problem) {
    if (error.empty()) __builtin_trap();  // rejection must carry a reason
    return 0;
  }
  // Walk the parsed objects so latent inconsistencies surface under ASan.
  double mass = 0.0;
  for (int i = 0; i < problem->size(); ++i) {
    const factcheck::DiscreteDistribution& dist = problem->object(i).dist;
    for (int k = 0; k < dist.support_size(); ++k) mass += dist.prob(k);
    (void)dist.Mean();
  }
  (void)mass;
  // Round-trip fixed point: serialize, re-parse, serialize again.
  std::string serialized = factcheck::data::ProblemToCsv(*problem);
  std::optional<factcheck::CleaningProblem> again =
      factcheck::data::ProblemFromCsv(serialized, &error);
  if (!again) __builtin_trap();  // our own output must always parse
  if (factcheck::data::ProblemToCsv(*again) != serialized) {
    __builtin_trap();  // %.17g round-trip drifted
  }
  return 0;
}

#ifndef FACTCHECK_FUZZ_LIBFUZZER

#include "standalone_driver.h"

int main(int argc, char** argv) {
  return factcheck_fuzz::StandaloneMain(argc, argv, "problem_csv_fuzz",
                                        ",;\"\n-0.eE ");
}

#endif  // FACTCHECK_FUZZ_LIBFUZZER
