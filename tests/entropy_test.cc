#include <gtest/gtest.h>

#include <cmath>

#include "core/entropy.h"
#include "core/ev.h"
#include "data/synthetic.h"

namespace factcheck {
namespace {

CleaningProblem CoinProblem(int n) {
  std::vector<UncertainObject> objects(n);
  for (int i = 0; i < n; ++i) {
    objects[i].current_value = 0.0;
    objects[i].dist = DiscreteDistribution({0.0, 1.0}, {0.5, 0.5});
    objects[i].cost = 1.0;
  }
  return CleaningProblem(std::move(objects));
}

TEST(QueryEntropyTest, DeterministicQueryHasZeroEntropy) {
  CleaningProblem p = CoinProblem(2);
  LambdaQueryFunction f({0, 1}, [](const std::vector<double>& x) {
    return x[0] - x[0] + 7.0;  // constant
  });
  EXPECT_DOUBLE_EQ(QueryEntropy(f, p), 0.0);
}

TEST(QueryEntropyTest, FairCoinQueryHasLog2) {
  CleaningProblem p = CoinProblem(1);
  LinearQueryFunction f({0}, {1.0});
  EXPECT_NEAR(QueryEntropy(f, p), std::log(2.0), 1e-12);
}

TEST(QueryEntropyTest, SumOfTwoCoinsHasBinomialEntropy) {
  CleaningProblem p = CoinProblem(2);
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  // Values 0,1,2 with probs 1/4, 1/2, 1/4.
  double expected = -(0.25 * std::log(0.25) * 2 + 0.5 * std::log(0.5));
  EXPECT_NEAR(QueryEntropy(f, p), expected, 1e-12);
}

TEST(ExpectedPosteriorEntropyTest, CleaningEverythingKillsEntropy) {
  CleaningProblem p = CoinProblem(3);
  LinearQueryFunction f({0, 1, 2}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(ExpectedPosteriorEntropy(f, p, {0, 1, 2}), 0.0);
}

TEST(ExpectedPosteriorEntropyTest, EmptySetIsPriorEntropy) {
  CleaningProblem p = CoinProblem(3);
  LinearQueryFunction f({0, 1, 2}, {1.0, 1.0, 1.0});
  EXPECT_NEAR(ExpectedPosteriorEntropy(f, p, {}), QueryEntropy(f, p),
              1e-12);
}

TEST(ExpectedPosteriorEntropyTest, CleaningOneCoinLeavesTwoCoinEntropy) {
  CleaningProblem p = CoinProblem(3);
  LinearQueryFunction f({0, 1, 2}, {1.0, 1.0, 1.0});
  CleaningProblem two = CoinProblem(2);
  LinearQueryFunction f2({0, 1}, {1.0, 1.0});
  EXPECT_NEAR(ExpectedPosteriorEntropy(f, p, {1}), QueryEntropy(f2, two),
              1e-12);
}

TEST(ExpectedPosteriorEntropyTest, MonotoneNonIncreasingOnChains) {
  CleaningProblem p = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 31,
      {.size = 5, .min_support = 2, .max_support = 3});
  LinearQueryFunction f({0, 1, 2, 3, 4}, {1, 1, 1, 1, 1});
  std::vector<int> cleaned;
  double prev = ExpectedPosteriorEntropy(f, p, cleaned);
  for (int i : {2, 0, 4, 1, 3}) {
    cleaned.push_back(i);
    double next = ExpectedPosteriorEntropy(f, p, cleaned);
    EXPECT_LE(next, prev + 1e-9);
    prev = next;
  }
}

TEST(EntropyVsVarianceTest, EntropyIgnoresMagnitude) {
  // The paper's argument for variance: a coin over {0, 1} and a coin over
  // {0, 1000} have the same entropy but wildly different variance.
  std::vector<UncertainObject> objects(2);
  objects[0].dist = DiscreteDistribution({0.0, 1.0}, {0.5, 0.5});
  objects[0].cost = 1.0;
  objects[1].dist = DiscreteDistribution({0.0, 1000.0}, {0.5, 0.5});
  objects[1].cost = 1.0;
  CleaningProblem p(std::move(objects));
  LinearQueryFunction f0({0}, {1.0});
  LinearQueryFunction f1({1}, {1.0});
  EXPECT_NEAR(QueryEntropy(f0, p), QueryEntropy(f1, p), 1e-12);
  EXPECT_LT(PriorVariance(f0, p), PriorVariance(f1, p) / 1e5);
}

TEST(GreedyMinEntropyTest, CanLeaveMoreVarianceThanGreedyMinVar) {
  // Two objects: small-magnitude fair coin (max entropy) vs huge-magnitude
  // skewed coin (less entropy, far more variance).  Entropy-guided
  // selection cleans the fair coin; variance-guided cleans the big one.
  std::vector<UncertainObject> objects(2);
  objects[0].dist = DiscreteDistribution({0.0, 1.0}, {0.5, 0.5});
  objects[0].cost = 1.0;
  objects[0].current_value = 0.5;
  objects[1].dist = DiscreteDistribution({0.0, 1000.0}, {0.9, 0.1});
  objects[1].cost = 1.0;
  objects[1].current_value = 100.0;
  CleaningProblem p(std::move(objects));
  LinearQueryFunction f({0, 1}, {1.0, 1.0});
  Selection by_entropy = GreedyMinEntropy(f, p, 1.0);
  Selection by_variance = GreedyMinVar(f, p, 1.0);
  ASSERT_EQ(by_entropy.cleaned.size(), 1u);
  ASSERT_EQ(by_variance.cleaned.size(), 1u);
  EXPECT_EQ(by_entropy.cleaned[0], 0);
  EXPECT_EQ(by_variance.cleaned[0], 1);
  EXPECT_GT(ExpectedPosteriorVariance(f, p, by_entropy.cleaned),
            ExpectedPosteriorVariance(f, p, by_variance.cleaned));
}

}  // namespace
}  // namespace factcheck
