#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "claims/claim.h"
#include "claims/perturbation.h"
#include "claims/quality.h"
#include "data/synthetic.h"
#include "montecarlo/sampler.h"
#include "util/random.h"

namespace factcheck {
namespace {

TEST(ClaimTest, WindowComparisonWeights) {
  // Later window minus earlier window.
  Claim c = MakeWindowComparisonClaim(0, 2, 2);
  EXPECT_EQ(c.References(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(c.Evaluate({1, 2, 10, 20}), 30 - 3);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(0), -1.0);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(3), 1.0);
}

TEST(ClaimTest, WindowComparisonOverlappingWindowsCancel) {
  // Windows [1..2] vs [2..3]: the shared object 2 cancels to coefficient 0
  // and drops out of the references.
  Claim c = MakeWindowComparisonClaim(1, 2, 2);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(2), 0.0);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(1), -1.0);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(3), 1.0);
}

TEST(ClaimTest, WindowSum) {
  Claim c = MakeWindowSumClaim(1, 3);
  EXPECT_EQ(c.References(), (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(c.Evaluate({99, 1, 2, 3, 99}), 6);
}

TEST(ClaimTest, WeightedAggregate) {
  Claim c = MakeWeightedAggregateClaim({0, 1}, 1.0, {2, 3}, -0.3, "ratio");
  // (10 + 20) - 0.3 * (100 + 100) = -30.
  EXPECT_DOUBLE_EQ(c.Evaluate({10, 20, 100, 100}), -30.0);
  EXPECT_EQ(c.description, "ratio");
}

TEST(SensibilityTest, NormalizedAndDecaying) {
  std::vector<double> s = ExponentialSensibilities({1, 2, 3}, 1.5);
  EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-12);
  EXPECT_GT(s[0], s[1]);
  EXPECT_GT(s[1], s[2]);
  EXPECT_NEAR(s[0] / s[1], 1.5, 1e-9);
}

TEST(SensibilityTest, UniformWhenLambdaOne) {
  std::vector<double> s = ExponentialSensibilities({1, 5, 9}, 1.0);
  for (double v : s) EXPECT_NEAR(v, 1.0 / 3, 1e-12);
}

TEST(PerturbationTest, WindowComparisonCountAndExclusion) {
  // n = 26 (Adoptions), width 4: placements 0..17 (18 back-to-back pairs of
  // 4-year windows); excluding the original leaves 17... the paper's 18
  // perturbations include all shifts; with include_original they are 18.
  PerturbationSet with_orig =
      WindowComparisonPerturbations(26, 4, 0, 1.5, /*include_original=*/true);
  EXPECT_EQ(with_orig.size(), 19);
  PerturbationSet without =
      WindowComparisonPerturbations(26, 4, 0, 1.5, /*include_original=*/false);
  EXPECT_EQ(without.size(), 18);
  EXPECT_NEAR(std::accumulate(without.sensibilities.begin(),
                              without.sensibilities.end(), 0.0),
              1.0, 1e-12);
}

TEST(PerturbationTest, NonOverlappingWindowsDoNotShareObjects) {
  PerturbationSet set = NonOverlappingWindowSumPerturbations(40, 4, 16, 1.5);
  for (int a = 0; a < set.size(); ++a) {
    for (int b = a + 1; b < set.size(); ++b) {
      const auto& ra = set.perturbations[a].References();
      const auto& rb = set.perturbations[b].References();
      for (int i : ra) {
        EXPECT_FALSE(std::binary_search(rb.begin(), rb.end(), i))
            << "claims " << a << " and " << b << " share object " << i;
      }
    }
  }
}

TEST(PerturbationTest, NonOverlappingCapRespected) {
  PerturbationSet set =
      NonOverlappingWindowSumPerturbations(40, 4, 16, 1.5, 5);
  EXPECT_EQ(set.size(), 5);
}

TEST(PerturbationTest, SlidingWindowsOverlap) {
  PerturbationSet set = SlidingWindowSumPerturbations(10, 4, 0, 1.5);
  EXPECT_EQ(set.size(), 6);  // starts 1..6
  // Adjacent perturbations share objects.
  const auto& r0 = set.perturbations[0].References();
  const auto& r1 = set.perturbations[1].References();
  bool share = false;
  for (int i : r0) {
    if (std::binary_search(r1.begin(), r1.end(), i)) share = true;
  }
  EXPECT_TRUE(share);
}

TEST(PerturbationTest, AllReferencesUnion) {
  PerturbationSet set = SlidingWindowSumPerturbations(8, 3, 0, 1.5);
  std::vector<int> refs = set.AllReferences();
  EXPECT_EQ(refs.front(), 0);
  EXPECT_EQ(refs.back(), 7);
  EXPECT_EQ(static_cast<int>(refs.size()), 8);
}

TEST(QualityTransformTest, BiasIsSignedWeightedDelta) {
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kBias, 12.0, 10.0, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kBias, 8.0, 10.0, 0.25), -0.5);
}

TEST(QualityTransformTest, DuplicityIsIndicator) {
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kDuplicity, 12.0, 10.0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kDuplicity, 10.0, 10.0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kDuplicity, 9.99, 10.0, 0.9), 0.0);
}

TEST(QualityTransformTest, FragilityIsSquaredNegativePart) {
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kFragility, 12.0, 10.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(
      QualityTransform(QualityMeasure::kFragility, 7.0, 10.0, 0.5),
      0.5 * 9.0);
}

TEST(ClaimQualityFunctionTest, DuplicityCountsStrongPerturbations) {
  PerturbationSet set = SlidingWindowSumPerturbations(6, 2, 0, 1.5);
  double reference = 5.0;
  ClaimQualityFunction dup(&set, QualityMeasure::kDuplicity, reference);
  // x sums: windows at 1..4 with values below.
  std::vector<double> x = {0, 2, 4, 2, 0, 0};
  // Perturbation sums: [1,2]=6, [2,3]=6, [3,4]=2, [4,5]=0 -> two >= 5.
  EXPECT_DOUBLE_EQ(dup.Evaluate(x), 2.0);
}

TEST(ClaimQualityFunctionTest, ReferencesAreUnionOfPerturbationRefs) {
  PerturbationSet set = NonOverlappingWindowSumPerturbations(12, 3, 0, 1.5);
  ClaimQualityFunction f(&set, QualityMeasure::kBias, 0.0);
  // The original window [0..2] is NOT in the perturbation refs.
  const auto& refs = f.References();
  EXPECT_FALSE(std::binary_search(refs.begin(), refs.end(), 0));
  EXPECT_TRUE(std::binary_search(refs.begin(), refs.end(), 3));
}

TEST(BiasLinearFunctionTest, MatchesGenericEvaluationOnRandomPoints) {
  CleaningProblem problem = data::MakeSynthetic(
      data::SyntheticFamily::kUniformRandom, 5, {.size = 12});
  PerturbationSet set = SlidingWindowSumPerturbations(12, 4, 2, 1.5);
  double reference = 123.0;
  ClaimQualityFunction generic(&set, QualityMeasure::kBias, reference);
  LinearQueryFunction linear = BiasLinearFunction(set, reference);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x = SampleValues(problem, rng);
    EXPECT_NEAR(generic.Evaluate(x), linear.Evaluate(x), 1e-9);
  }
}

TEST(BiasLinearFunctionTest, WeightsAggregateSensibilities) {
  // Two perturbations sharing object 1: weights add up.
  PerturbationSet set;
  set.original = MakeWindowSumClaim(0, 1);
  set.perturbations = {MakeWindowSumClaim(1, 1), MakeWindowSumClaim(1, 2)};
  set.sensibilities = {0.25, 0.75};
  LinearQueryFunction bias = BiasLinearFunction(set, 10.0);
  EXPECT_DOUBLE_EQ(bias.Coefficient(1), 1.0);   // 0.25 + 0.75
  EXPECT_DOUBLE_EQ(bias.Coefficient(2), 0.75);
  EXPECT_DOUBLE_EQ(bias.intercept(), -10.0);
}

}  // namespace
}  // namespace factcheck
