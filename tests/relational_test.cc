#include <gtest/gtest.h>

#include "data/cdc.h"
#include "relational/query.h"
#include "relational/table.h"
#include "relational/uncertain_table.h"

namespace factcheck {
namespace {

Table SmallSeries() {
  Table t(Schema({{"year", ColumnType::kInt},
                  {"value", ColumnType::kDouble}}));
  for (int y = 2000; y < 2008; ++y) {
    t.AddRow({static_cast<int64_t>(y), 10.0 * (y - 1999)});
  }
  return t;
}

TEST(SchemaTest, FindAndRequire) {
  Schema s({{"a", ColumnType::kInt}, {"b", ColumnType::kDouble}});
  EXPECT_EQ(s.Find("a"), 0);
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("c"), -1);
  EXPECT_EQ(s.Require("b"), 1);
}

TEST(SchemaDeathTest, DuplicateColumnNamesAbort) {
  EXPECT_DEATH(Schema({{"a", ColumnType::kInt}, {"a", ColumnType::kInt}}),
               "CHECK failed");
}

TEST(TableTest, TypedAccess) {
  Table t = SmallSeries();
  EXPECT_EQ(t.num_rows(), 8);
  EXPECT_EQ(t.GetInt(0, 0), 2000);
  EXPECT_DOUBLE_EQ(t.GetDouble(3, 1), 40.0);
}

TEST(TableDeathTest, TypeMismatchAborts) {
  Table t(Schema({{"year", ColumnType::kInt}}));
  EXPECT_DEATH(t.AddRow({2.5}), "CHECK failed");
}

TEST(UncertainTableTest, ToCleaningProblemCarriesModelAndLabels) {
  UncertainTable ut(SmallSeries(), "value");
  for (int r = 0; r < ut.num_rows(); ++r) {
    ut.SetUncertainty(r, DiscreteDistribution({1.0, 2.0}, {0.5, 0.5}),
                      3.0 + r);
  }
  CleaningProblem problem = ut.ToCleaningProblem();
  EXPECT_EQ(problem.size(), 8);
  EXPECT_DOUBLE_EQ(problem.object(2).current_value, 30.0);
  EXPECT_DOUBLE_EQ(problem.object(2).cost, 5.0);
  EXPECT_EQ(problem.object(0).label, "2000");
}

TEST(UncertainTableDeathTest, MissingModelAborts) {
  UncertainTable ut(SmallSeries(), "value");
  ut.SetUncertainty(0, DiscreteDistribution::PointMass(1.0), 1.0);
  EXPECT_DEATH(ut.ToCleaningProblem(), "CHECK failed");
}

TEST(ConditionTest, IntBetweenAndEq) {
  Table t = SmallSeries();
  Condition between = Condition::IntBetween("year", 2002, 2004);
  EXPECT_FALSE(between.Matches(t, 0));
  EXPECT_TRUE(between.Matches(t, 2));
  EXPECT_TRUE(between.Matches(t, 4));
  EXPECT_FALSE(between.Matches(t, 5));
  Condition eq = Condition::IntEq("year", 2003);
  EXPECT_TRUE(eq.Matches(t, 3));
  EXPECT_FALSE(eq.Matches(t, 4));
}

TEST(AggregateQueryTest, WindowComparisonCompilesToSignedWeights) {
  UncertainTable ut(SmallSeries(), "value");
  for (int r = 0; r < ut.num_rows(); ++r) {
    ut.SetUncertainty(r, DiscreteDistribution::PointMass(0.0), 1.0);
  }
  AggregateQuery q;
  q.AddTerm(+1.0, {Condition::IntBetween("year", 2004, 2005)});
  q.AddTerm(-1.0, {Condition::IntBetween("year", 2002, 2003)});
  Claim c = q.Compile(ut, "cmp");
  // Rows 4,5 get +1; rows 2,3 get -1.
  EXPECT_DOUBLE_EQ(c.query.Coefficient(4), 1.0);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(2), -1.0);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(0), 0.0);
  // (50+60) - (30+40) = 40.
  std::vector<double> values(8);
  for (int r = 0; r < 8; ++r) values[r] = ut.MeasureValue(r);
  EXPECT_DOUBLE_EQ(c.Evaluate(values), 40.0);
}

TEST(AggregateQueryTest, ShiftWindowMovesBetweenBounds) {
  AggregateQuery q;
  q.AddTerm(1.0, {Condition::IntBetween("year", 2002, 2003)});
  AggregateQuery shifted = q.ShiftWindow("year", -2);
  EXPECT_EQ(shifted.terms()[0].conditions[0].lo, 2000);
  EXPECT_EQ(shifted.terms()[0].conditions[0].hi, 2001);
}

TEST(ShiftedWindowPerturbationsTest, GeneratesOnlyInRangeShifts) {
  UncertainTable ut(SmallSeries(), "value");
  for (int r = 0; r < ut.num_rows(); ++r) {
    ut.SetUncertainty(r, DiscreteDistribution::PointMass(0.0), 1.0);
  }
  AggregateQuery q;
  q.AddTerm(1.0, {Condition::IntBetween("year", 2004, 2005)});
  q.AddTerm(-1.0, {Condition::IntBetween("year", 2002, 2003)});
  PerturbationSet set =
      ShiftedWindowPerturbations(q, ut, "year", -6, 6, 1.5);
  // Feasible shifts keep both windows inside 2000..2007: delta in [-2, 2]
  // minus 0 -> 4 perturbations.
  EXPECT_EQ(set.size(), 4);
  double total = 0;
  for (double s : set.sensibilities) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GroupBySumClaimsTest, OneClaimPerGroupInFirstOccurrenceOrder) {
  UncertainTable ut = data::MakeCdcCausesTable(99);
  std::vector<GroupClaim> groups = GroupBySumClaims(
      ut, "cause", {Condition::IntBetween("year", 2016, 2017)});
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].group, "firearms");
  EXPECT_EQ(groups[1].group, "transportation");
  for (const GroupClaim& g : groups) {
    EXPECT_EQ(static_cast<int>(g.claim.References().size()), 2);
  }
}

TEST(GroupBySumClaimsTest, EmptyConditionSumsWholeGroups) {
  UncertainTable ut = data::MakeCdcCausesTable(99);
  std::vector<GroupClaim> groups = GroupBySumClaims(ut, "cause", {});
  ASSERT_EQ(groups.size(), 4u);
  for (const GroupClaim& g : groups) {
    EXPECT_EQ(static_cast<int>(g.claim.References().size()),
              data::kCdcYears);
  }
}

TEST(GroupBySumClaimsTest, UnmatchedGroupsOmitted) {
  UncertainTable ut = data::MakeCdcCausesTable(99);
  std::vector<GroupClaim> groups = GroupBySumClaims(
      ut, "cause", {Condition::StringEq("cause", "falls")});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].group, "falls");
}

TEST(RelationalIntegrationTest, CdcCausesTableCompilesRatioClaim) {
  UncertainTable ut = data::MakeCdcCausesTable(1234);
  AggregateQuery q;
  // Transportation injuries in 2016-2017 vs 30% of the other causes.
  q.AddTerm(1.0, {Condition::StringEq("cause", "transportation"),
                  Condition::IntBetween("year", 2016, 2017)});
  for (const char* other : {"firearms", "drowning", "falls"}) {
    q.AddTerm(-0.3, {Condition::StringEq("cause", other),
                     Condition::IntBetween("year", 2016, 2017)});
  }
  Claim c = q.Compile(ut, "transportation ratio");
  EXPECT_EQ(static_cast<int>(c.References().size()), 8);
  // The claim references two transportation rows positively.
  int transport_2016 =
      1 * data::kCdcYears + (2016 - data::kCdcFirstYear);
  EXPECT_DOUBLE_EQ(c.query.Coefficient(transport_2016), 1.0);
}

}  // namespace
}  // namespace factcheck
